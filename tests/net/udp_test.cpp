#include "net/udp.h"

#include <gtest/gtest.h>

namespace shadowprobe::net {
namespace {

const Ipv4Addr kSrc(10, 0, 0, 1);
const Ipv4Addr kDst(10, 0, 0, 2);

TEST(Udp, EncodeDecodeRoundTrip) {
  UdpDatagram udp;
  udp.src_port = 30000;
  udp.dst_port = 53;
  udp.payload = to_bytes("query bytes");
  Bytes wire = udp.encode(kSrc, kDst);
  ASSERT_EQ(wire.size(), UdpDatagram::kHeaderSize + udp.payload.size());

  auto decoded = UdpDatagram::decode(BytesView(wire), kSrc, kDst);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().src_port, 30000);
  EXPECT_EQ(decoded.value().dst_port, 53);
  EXPECT_EQ(decoded.value().payload, udp.payload);
}

TEST(Udp, ChecksumCoversPseudoHeader) {
  UdpDatagram udp;
  udp.src_port = 1;
  udp.dst_port = 2;
  udp.payload = to_bytes("x");
  Bytes wire = udp.encode(kSrc, kDst);
  // Decoding against different addresses must fail the checksum.
  EXPECT_FALSE(UdpDatagram::decode(BytesView(wire), kSrc, Ipv4Addr(9, 9, 9, 9)).ok());
}

TEST(Udp, CorruptPayloadFailsChecksum) {
  UdpDatagram udp;
  udp.src_port = 5;
  udp.dst_port = 6;
  udp.payload = to_bytes("payload");
  Bytes wire = udp.encode(kSrc, kDst);
  wire.back() ^= 0x01;
  EXPECT_FALSE(UdpDatagram::decode(BytesView(wire), kSrc, kDst).ok());
}

TEST(Udp, ZeroChecksumMeansUnchecked) {
  UdpDatagram udp;
  udp.src_port = 5;
  udp.dst_port = 6;
  udp.payload = to_bytes("data");
  Bytes wire = udp.encode(kSrc, kDst);
  wire[6] = 0;
  wire[7] = 0;
  wire.back() ^= 0xFF;  // corruption is invisible without a checksum
  EXPECT_TRUE(UdpDatagram::decode(BytesView(wire), kSrc, kDst).ok());
}

TEST(Udp, RejectsBadLengths) {
  Bytes tiny = {0, 1, 0, 2};
  EXPECT_FALSE(UdpDatagram::decode(BytesView(tiny), kSrc, kDst).ok());

  UdpDatagram udp;
  udp.payload = to_bytes("abc");
  Bytes wire = udp.encode(kSrc, kDst);
  wire[4] = 0xFF;  // length field now exceeds the buffer
  wire[5] = 0xFF;
  EXPECT_FALSE(UdpDatagram::decode(BytesView(wire), kSrc, kDst).ok());
}

TEST(Udp, EmptyPayloadRoundTrips) {
  UdpDatagram udp;
  udp.src_port = 1234;
  udp.dst_port = 4321;
  Bytes wire = udp.encode(kSrc, kDst);
  auto decoded = UdpDatagram::decode(BytesView(wire), kSrc, kDst);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().payload.empty());
}

}  // namespace
}  // namespace shadowprobe::net
