// End-to-end blind evaluation: the full pipeline (screening, Phase I,
// Phase II, correlation, analysis) runs against the standard ground-truth
// exhibitor deployment, and the recovered landscape is checked against what
// was actually deployed — the reproduction's equivalent of validating the
// methodology.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/portscan.h"
#include "shadow/profiles.h"

namespace shadowprobe {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::TestbedConfig config;
    config.topology.seed = 424242;
    config.topology.global_vps = 40;
    config.topology.cn_vps = 40;
    config.topology.web_sites = 16;
    bed_ = core::Testbed::create(config).release();
    shadow::ShadowConfig shadow_config;
    deployment_ = new shadow::ShadowDeployment(
        shadow::deploy_standard_exhibitors(*bed_, shadow_config));
    core::CampaignConfig campaign_config;
    campaign_config.total_duration = 25 * kDay;
    campaign_ = new core::Campaign(*bed_, campaign_config);
    campaign_->run();
  }

  static void TearDownTestSuite() {
    delete campaign_;
    campaign_ = nullptr;
    delete deployment_;
    deployment_ = nullptr;
    delete bed_;
    bed_ = nullptr;
  }

  static core::Testbed* bed_;
  static shadow::ShadowDeployment* deployment_;
  static core::Campaign* campaign_;
};

core::Testbed* EndToEnd::bed_ = nullptr;
shadow::ShadowDeployment* EndToEnd::deployment_ = nullptr;
core::Campaign* EndToEnd::campaign_ = nullptr;

TEST_F(EndToEnd, ScreeningRemovesDefectiveProviders) {
  const auto& screening = campaign_->screening();
  EXPECT_EQ(screening.candidates, 80);
  EXPECT_GT(screening.usable, 60);
  EXPECT_LT(screening.usable, screening.candidates);
  // Every active VP honours requested TTLs and sits behind clean paths.
  for (const auto* vp : campaign_->active_vps()) {
    EXPECT_FALSE(vp->resets_ttl) << vp->id;
    EXPECT_FALSE(vp->residential) << vp->id;
  }
}

TEST_F(EndToEnd, CampaignProducesUnsolicitedRequests) {
  EXPECT_GT(campaign_->ledger().decoy_count(), 1000u);
  EXPECT_GT(campaign_->unsolicited().size(), 100u);
  EXPECT_GT(bed_->logbook().size(), campaign_->unsolicited().size());
}

TEST_F(EndToEnd, ResolverHMatchesGroundTruth) {
  auto ratios = core::path_ratios(campaign_->ledger(), campaign_->unsolicited());
  auto top = core::top_shadowed_resolvers(ratios, 5);
  std::set<std::string> recovered(top.begin(), top.end());
  // The pipeline must rediscover the deployed destination-side shadowers.
  for (const auto& name : deployment_->shadowing_resolvers) {
    EXPECT_TRUE(recovered.count(name)) << "missed " << name;
  }
}

TEST_F(EndToEnd, UnshadowedDestinationsStayQuiet) {
  auto ratios = core::path_ratios(campaign_->ledger(), campaign_->unsolicited());
  // Roots, TLDs and the self-built control resolver have (next to) no
  // shadowing — the only residue allowed is the thin on-wire DNS observer
  // tail (Table 3's sub-percent DNS rows).
  for (const char* quiet : {"a.root", "m.root", ".com", ".org", "self-built"}) {
    auto cell = ratios.total(core::DecoyProtocol::kDns, quiet);
    EXPECT_GT(cell.paths, 0) << quiet;
    EXPECT_LT(cell.ratio(), 0.08) << quiet;
  }
  // ...and they never rank anywhere near Resolver_h.
  auto top = core::top_shadowed_resolvers(ratios, 5);
  for (const auto& name : top) {
    EXPECT_NE(name, "self-built");
    EXPECT_NE(name, "a.root");
  }
}

TEST_F(EndToEnd, Cn114DnsAsymmetryRecovered) {
  // Case study II: 114DNS shadowing is exhibited by its CN anycast
  // instances only; CN VPs see high ratios, global VPs see (almost) none.
  auto ratios = core::path_ratios(campaign_->ledger(), campaign_->unsolicited());
  auto cn = ratios.group(core::DecoyProtocol::kDns, "114DNS", /*cn_platform=*/true);
  auto global = ratios.group(core::DecoyProtocol::kDns, "114DNS", /*cn_platform=*/false);
  ASSERT_GT(cn.paths, 0);
  ASSERT_GT(global.paths, 0);
  EXPECT_GT(cn.ratio(), 0.6);
  EXPECT_LT(global.ratio(), 0.2);
  // Yandex, by contrast, shadows globally.
  auto yandex_global = ratios.group(core::DecoyProtocol::kDns, "Yandex", false);
  EXPECT_GT(yandex_global.ratio(), 0.7);
}

TEST_F(EndToEnd, DnsObserversLocateAtDestination) {
  auto locations = core::observer_locations(campaign_->findings());
  ASSERT_GT(locations.located_paths[core::DecoyProtocol::kDns], 0);
  // Paper Table 2: 99.7% of DNS observers at normalized hop 10.
  EXPECT_GT(locations.shares[core::DecoyProtocol::kDns][10], 0.95);
}

TEST_F(EndToEnd, HttpObserversLocateOnTheWire) {
  auto locations = core::observer_locations(campaign_->findings());
  ASSERT_GT(locations.located_paths[core::DecoyProtocol::kHttp], 0);
  // Paper Table 2: 97.7% of HTTP observers on the wire (hops 1-9).
  EXPECT_LT(locations.shares[core::DecoyProtocol::kHttp][10], 0.3);
}

TEST_F(EndToEnd, IcmpRevealedObserverAddressesMatchDeployedTaps) {
  int matched = 0;
  int total = 0;
  for (const auto& finding : campaign_->findings()) {
    if (!finding.observer_addr) continue;
    ++total;
    if (deployment_->all_wire_observer_addrs().count(*finding.observer_addr) > 0) {
      ++matched;
    }
  }
  ASSERT_GT(total, 0);
  // The large majority of located on-wire observers are real deployed taps
  // (a small remainder is expected: multi-observer paths attribute to the
  // first tap on the path).
  EXPECT_GT(static_cast<double>(matched) / total, 0.6);
}

TEST_F(EndToEnd, ObserverAsesIncludeChinanet) {
  auto table = core::observer_ases(campaign_->findings(), bed_->topology().geo());
  ASSERT_FALSE(table.rows[core::DecoyProtocol::kHttp].empty());
  bool found_4134 = false;
  for (const auto& row : table.rows[core::DecoyProtocol::kHttp]) {
    if (row.asn == 4134) found_4134 = true;
  }
  EXPECT_TRUE(found_4134);
  // Most observer IPs geolocate to CN (paper: 79%).
  EXPECT_GT(table.observer_countries.share("CN"), 0.5);
}

TEST_F(EndToEnd, TemporalShapesMatchThePaper) {
  auto ratios = core::path_ratios(campaign_->ledger(), campaign_->unsolicited());
  auto resolver_h = core::top_shadowed_resolvers(ratios, 5);
  auto cdfs = core::interval_cdf_by_resolver(campaign_->ledger(), campaign_->unsolicited(),
                                             resolver_h);
  ASSERT_TRUE(cdfs.count("Yandex"));
  const Cdf& yandex = cdfs.at("Yandex");
  // A sizable share arrives within a minute (benign re-queries)...
  EXPECT_GT(yandex.at(60.0), 0.01);
  // ...and a sizable share only after a day (true shadowing).
  EXPECT_LT(yandex.at(to_seconds(kDay)), 0.95);
  EXPECT_GT(yandex.max(), to_seconds(5 * kDay));
}

TEST_F(EndToEnd, HttpTlsRetentionShorterThanDns) {
  auto by_protocol = core::interval_cdf_by_protocol(campaign_->unsolicited());
  ASSERT_TRUE(by_protocol.count(core::DecoyProtocol::kHttp));
  // Figure 7: most HTTP-decoy requests arrive within a day.
  EXPECT_GT(by_protocol.at(core::DecoyProtocol::kHttp).at(to_seconds(kDay)), 0.6);
}

TEST_F(EndToEnd, ProtocolConversionObserved) {
  // Figure 5: a large share of Yandex DNS decoys leads to HTTP(S) probes.
  auto combos = core::protocol_combos(campaign_->ledger(), campaign_->unsolicited());
  ASSERT_TRUE(combos.shares.count("Yandex"));
  double web = combos.shares["Yandex"][core::DecoyOutcome::kWebWithinDay] +
               combos.shares["Yandex"][core::DecoyOutcome::kWebAfterDays];
  EXPECT_GT(web, 0.3);
  // Google (no shadower, only benign re-queries): DNS-DNS only.
  if (combos.shares.count("Google")) {
    EXPECT_DOUBLE_EQ(combos.shares["Google"][core::DecoyOutcome::kWebWithinDay], 0.0);
    EXPECT_DOUBLE_EQ(combos.shares["Google"][core::DecoyOutcome::kWebAfterDays], 0.0);
  }
}

TEST_F(EndToEnd, OriginAnalysisFindsGoogleAndBlocklistHits) {
  auto ratios = core::path_ratios(campaign_->ledger(), campaign_->unsolicited());
  auto resolver_h = core::top_shadowed_resolvers(ratios, 5);
  auto origins = core::origin_ases(campaign_->ledger(), campaign_->unsolicited(),
                                   resolver_h, bed_->topology().geo(), bed_->blocklist());
  // Exhibitor fleets prefer Google Public DNS for their lookups, so Google
  // is a heavy origin of unsolicited DNS queries (Figure 6).
  std::uint64_t google = 0;
  for (const auto& [resolver, counter] : origins.per_resolver) {
    google += counter.get("AS15169 Google LLC");
  }
  EXPECT_GT(google, 0u);
  EXPECT_GT(origins.distinct_dns_origins, 5);
  // DNS-query origins are far less blocklisted than the web-probing proxies
  // (paper: 5.2% vs 45-72%).
  auto incentives = core::incentive_stats(campaign_->unsolicited(), bed_->signatures(),
                                          bed_->blocklist());
  EXPECT_LT(origins.dns_origin_blocklisted,
            incentives.dns_decoy_http_origin_blocklisted);
  EXPECT_LT(origins.dns_origin_blocklisted, 0.5);
}

TEST_F(EndToEnd, MultiUseRetentionObserved) {
  auto ratios = core::path_ratios(campaign_->ledger(), campaign_->unsolicited());
  auto resolver_h = core::top_shadowed_resolvers(ratios, 5);
  auto stats = core::retention_stats(campaign_->ledger(), campaign_->unsolicited(),
                                     resolver_h, "Yandex");
  ASSERT_GT(stats.considered_decoys, 0);
  // Section 5.1 shapes: a large share of decoys keeps producing requests
  // beyond one hour; some data re-appears 10 days later.
  EXPECT_GT(stats.over3_after_1h, 0.10);
  EXPECT_GT(stats.web_after_10d, 0.05);
}

TEST_F(EndToEnd, PayloadsAreReconnaissanceNotExploits) {
  auto stats = core::incentive_stats(campaign_->unsolicited(), bed_->signatures(),
                                     bed_->blocklist());
  ASSERT_GT(stats.http_requests, 0);
  EXPECT_FALSE(stats.exploits_found);
  EXPECT_GT(stats.payload_shares[intel::PayloadClass::kPathEnumeration], 0.5);
  // Reputation: web-probing origins are heavily blocklisted.
  EXPECT_GT(stats.dns_decoy_http_origin_blocklisted, 0.2);
}

TEST_F(EndToEnd, PortScanFindsBgpAmongObservers) {
  // Scan the ICMP-revealed observer addresses, as Section 5.2 does.
  std::set<net::Ipv4Addr> observers;
  for (const auto& finding : campaign_->findings()) {
    if (finding.observer_addr) observers.insert(*finding.observer_addr);
  }
  ASSERT_FALSE(observers.empty());
  core::PortScanner scanner(bed_->fork_rng("portscan-test"));
  sim::NodeId node = bed_->add_host_in_as(21859, "scanner-e2e", &scanner);
  scanner.bind(bed_->net(), node, bed_->net().address(node));
  scanner.scan(std::vector<net::Ipv4Addr>(observers.begin(), observers.end()),
               core::PortScanner::default_ports());
  bed_->loop().run_until(bed_->loop().now() + kMinute);
  auto summary = scanner.summarize();
  EXPECT_EQ(summary.targets, static_cast<int>(observers.size()));
  // Most observers expose nothing; where something is open, BGP leads.
  EXPECT_GT(summary.no_open_share(), 0.6);
  if (summary.with_open_ports > 0) {
    EXPECT_EQ(summary.top_open_port(), 179);
  }
}

TEST_F(EndToEnd, DeterministicAcrossRuns) {
  // A second, smaller campaign with a fixed seed reproduces byte-identical
  // headline numbers.
  auto run_once = [] {
    core::TestbedConfig config;
    config.topology.seed = 777;
    config.topology.global_vps = 6;
    config.topology.cn_vps = 6;
    config.topology.web_sites = 4;
    auto bed = core::Testbed::create(config);
    shadow::ShadowConfig shadow_config;
    shadow_config.fleet_size = 2;
    auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
    core::CampaignConfig campaign_config;
    campaign_config.phase1_window = 2 * kHour;
    campaign_config.phase2_grace = 6 * kHour;
    campaign_config.total_duration = 5 * kDay;
    core::Campaign campaign(*bed, campaign_config);
    campaign.run();
    return std::make_tuple(campaign.ledger().decoy_count(), bed->logbook().size(),
                           campaign.unsolicited().size(), campaign.findings().size());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace shadowprobe
