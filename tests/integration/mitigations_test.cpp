// Section-6 mitigation campaigns end-to-end: each mitigation removes
// exactly the exposure it should and nothing else.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/campaign.h"
#include "shadow/profiles.h"

namespace shadowprobe {
namespace {

struct MitigationRun {
  std::unique_ptr<core::Testbed> bed;
  std::unique_ptr<shadow::ShadowDeployment> deployment;
  std::unique_ptr<core::Campaign> campaign;
};

MitigationRun run_campaign(core::DnsDecoyTransport transport, bool ech) {
  MitigationRun run;
  core::TestbedConfig config;
  config.topology.seed = 505;
  config.topology.global_vps = 16;
  config.topology.cn_vps = 16;
  config.topology.web_sites = 10;
  run.bed = core::Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  shadow_config.fleet_size = 2;
  run.deployment = std::make_unique<shadow::ShadowDeployment>(
      shadow::deploy_standard_exhibitors(*run.bed, shadow_config));
  core::CampaignConfig campaign_config;
  campaign_config.phase1_window = 4 * kHour;
  campaign_config.phase2_grace = 12 * kHour;
  campaign_config.total_duration = 10 * kDay;
  campaign_config.dns_transport = transport;
  campaign_config.tls_decoys_use_ech = ech;
  run.campaign = std::make_unique<core::Campaign>(*run.bed, campaign_config);
  run.campaign->run();
  return run;
}

int wire_located(const MitigationRun& run, core::DecoyProtocol protocol) {
  int n = 0;
  for (const auto& finding : run.campaign->findings()) {
    if (finding.protocol == protocol && !finding.at_destination) ++n;
  }
  return n;
}

TEST(Mitigations, EchBlindsOnWireTlsObserversOnly) {
  MitigationRun baseline = run_campaign(core::DnsDecoyTransport::kPlain, false);
  MitigationRun ech = run_campaign(core::DnsDecoyTransport::kPlain, true);
  ASSERT_GT(wire_located(baseline, core::DecoyProtocol::kTls), 0);
  EXPECT_EQ(wire_located(ech, core::DecoyProtocol::kTls), 0);
  // Destination-side TLS shadowing (terminating parties) survives ECH.
  int dest_tls = 0;
  for (const auto& finding : ech.campaign->findings()) {
    if (finding.protocol == core::DecoyProtocol::kTls && finding.at_destination) ++dest_tls;
  }
  EXPECT_GT(dest_tls, 0);
  // HTTP observation is untouched.
  EXPECT_GT(wire_located(ech, core::DecoyProtocol::kHttp), 0);
}

TEST(Mitigations, EncryptedDnsDoesNotBluntDestinationShadowing) {
  MitigationRun dot = run_campaign(core::DnsDecoyTransport::kEncrypted, false);
  auto ratios = core::path_ratios(dot.campaign->ledger(), dot.campaign->unsolicited());
  // The resolver decrypts and shadows exactly as before (the paper's core
  // caveat about encrypted DNS).
  EXPECT_GT(ratios.total(core::DecoyProtocol::kDns, "Yandex").ratio(), 0.8);
  // But nothing on the wire can read the queries any more.
  EXPECT_EQ(wire_located(dot, core::DecoyProtocol::kDns), 0);
}

TEST(Mitigations, ObliviousDnsStripsClientIdentity) {
  MitigationRun odoh = run_campaign(core::DnsDecoyTransport::kOblivious, false);
  // Shadowing persists...
  auto ratios = core::path_ratios(odoh.campaign->ledger(), odoh.campaign->unsolicited());
  EXPECT_GT(ratios.total(core::DecoyProtocol::kDns, "Yandex").ratio(), 0.8);
  // ...but no resolver-side exhibitor ever recorded a vantage point as the
  // querying client.
  std::set<net::Ipv4Addr> vp_addrs;
  for (const auto* vp : odoh.campaign->active_vps()) vp_addrs.insert(vp->addr);
  for (const auto& exhibitor : odoh.deployment->exhibitors) {
    if (exhibitor.label.rfind("resolver:", 0) != 0) continue;
    const auto& store = exhibitor.exhibitor->store();
    for (std::size_t i = 0; i < store.size(); ++i) {
      EXPECT_EQ(vp_addrs.count(store.at(i).client), 0u)
          << exhibitor.label << " learned a real client address";
    }
  }
}

}  // namespace
}  // namespace shadowprobe
