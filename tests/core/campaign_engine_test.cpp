// Sharded campaign engine: shard-count invariance, partitioning, merging.
#include "core/campaign_engine.h"

#include <gtest/gtest.h>

#include "core/json_export.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

TestbedConfig small_config(std::uint64_t seed = 61) {
  TestbedConfig config;
  config.topology.seed = seed;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

CampaignEngine::Decorator standard_exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    shadow::ShadowConfig shadow_config;
    shadow_config.fleet_size = 2;
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow_config));
  };
}

std::string run_and_export(int shards, std::uint64_t seed = 61) {
  CampaignEngine engine(small_config(seed), fast_campaign(), shards,
                        standard_exhibitors());
  CampaignResult result = engine.run();
  return export_campaign_json(engine.primary(), result);
}

TEST(CampaignEngineTest, ExportedJsonIsByteIdenticalForAnyShardCount) {
  std::string one = run_and_export(1);
  std::string two = run_and_export(2);
  std::string four = run_and_export(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(CampaignEngineTest, DifferentSeedsProduceDifferentResults) {
  // Guard against the invariance test passing vacuously (e.g. everything
  // collapsing to an empty result).
  EXPECT_NE(run_and_export(2, 61), run_and_export(2, 62));
}

TEST(CampaignEngineTest, ShardCountIsClamped) {
  CampaignEngine engine(small_config(), fast_campaign(), 0);
  EXPECT_EQ(engine.shard_count(), 1);
}

TEST(CampaignEngineTest, ClampedShardCountIsRecordedInResult) {
  CampaignEngine engine(small_config(), fast_campaign(), 0, standard_exhibitors());
  CampaignResult result = engine.run();
  EXPECT_EQ(result.shard_stats.requested_shards, 0);
  EXPECT_EQ(result.shard_stats.effective_shards, 1);
  EXPECT_TRUE(result.shard_stats.clamped);
  EXPECT_EQ(result.shard_stats.per_shard.size(), 1u);
}

TEST(CampaignEngineTest, InRangeShardCountIsNotFlaggedAsClamped) {
  CampaignEngine engine(small_config(), fast_campaign(), 2, standard_exhibitors());
  CampaignResult result = engine.run();
  EXPECT_EQ(result.shard_stats.requested_shards, 2);
  EXPECT_EQ(result.shard_stats.effective_shards, 2);
  EXPECT_FALSE(result.shard_stats.clamped);
}

TEST(CampaignEngineTest, MergedLedgerMatchesSerialPathTable) {
  CampaignEngine engine(small_config(), fast_campaign(), 3);
  CampaignResult result = engine.run();
  Testbed& bed = engine.primary();
  std::size_t vps = result.active_vps.size();
  std::size_t dns_targets = bed.topology().dns_target_hosts().size();
  std::size_t sites = bed.topology().web_sites().size();
  // Same invariant the serial campaign upholds: one DNS path per (VP, DNS
  // target), one HTTP and one TLS path per (VP, site) — no duplicates from
  // the per-shard replicas.
  EXPECT_EQ(result.ledger.paths().size(), vps * (dns_targets + 2 * sites));
  std::size_t phase1 = 0;
  for (const auto& decoy : result.ledger.decoys()) {
    if (!decoy.phase2) ++phase1;
  }
  EXPECT_EQ(phase1, result.ledger.paths().size());
  // Every path's VP pointer is rebound into the primary replica's storage.
  const auto& storage = bed.topology().vantage_points();
  for (const auto& path : result.ledger.paths()) {
    ASSERT_NE(path.vp, nullptr);
    EXPECT_GE(path.vp, storage.data());
    EXPECT_LT(path.vp, storage.data() + storage.size());
  }
  // Per-shard loop statistics came back from every worker.
  EXPECT_EQ(result.shard_stats.per_shard.size(), 3u);
  for (const auto& stats : result.shard_stats.per_shard) EXPECT_GT(stats.processed, 0u);
}

}  // namespace
}  // namespace shadowprobe::core
