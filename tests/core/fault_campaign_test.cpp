// Campaigns under deterministic fault injection: layout invariance of the
// exported result, coverage accounting, quarantine + rescheduling.
#include <gtest/gtest.h>

#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

TestbedConfig small_config(std::uint64_t seed = 61) {
  TestbedConfig config;
  config.topology.seed = seed;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

CampaignEngine::Decorator standard_exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    shadow::ShadowConfig shadow_config;
    shadow_config.fleet_size = 2;
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow_config));
  };
}

CampaignConfig faulty_campaign(const std::string& spec) {
  CampaignConfig config = fast_campaign();
  auto profile = sim::FaultProfile::parse(spec);
  EXPECT_TRUE(profile.ok()) << profile.error().message;
  config.faults = profile.value();
  return config;
}

CampaignResult run_faulty(const std::string& spec, int shards, int workers = 1) {
  CampaignConfig config = faulty_campaign(spec);
  config.analysis_workers = workers;
  CampaignEngine engine(small_config(), config, shards, standard_exhibitors());
  return engine.run();
}

std::string export_faulty(const std::string& spec, int shards, int workers = 1) {
  CampaignConfig config = faulty_campaign(spec);
  config.analysis_workers = workers;
  CampaignEngine engine(small_config(), config, shards, standard_exhibitors());
  CampaignResult result = engine.run();
  return export_campaign_json(engine.primary(), result);
}

// The profile used throughout: enough loss to force retries, a scheduled US
// collector outage inside the capture window, and jitter on every hop.
constexpr const char* kLossySpec =
    "loss=0.05,jitter=10ms,hp-outage=US@3h+4h,retries=2,rto=30s";

TEST(FaultCampaignTest, ExportIsByteIdenticalAcrossShardAndWorkerCounts) {
  std::string base = export_faulty(kLossySpec, 1, 1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, export_faulty(kLossySpec, 2, 1));
  EXPECT_EQ(base, export_faulty(kLossySpec, 4, 2));
  EXPECT_EQ(base, export_faulty(kLossySpec, 2, 4));
}

TEST(FaultCampaignTest, LossyProfileReportsNonzeroCoverage) {
  CampaignResult result = run_faulty(kLossySpec, 2);
  ASSERT_TRUE(result.coverage.has_value());
  const CoverageStats& cov = *result.coverage;
  EXPECT_GT(cov.phase1_planned, 0u);
  EXPECT_GT(cov.decoys_attempted, 0u);
  EXPECT_GT(cov.decoys_delivered, 0u);
  // 5% per-hop loss over multi-hop paths must trip the retry machinery.
  EXPECT_GT(cov.retry_attempts, 0u);
  EXPECT_GT(cov.decoys_retried, 0u);
  EXPECT_LE(cov.decoys_delivered, cov.decoys_attempted);
  // The replicas saw real link-loss drops.
  ASSERT_EQ(result.shard_stats.per_shard_net.size(), 2u);
  std::uint64_t loss_drops = 0;
  for (const auto& net : result.shard_stats.per_shard_net) loss_drops += net.link_loss;
  EXPECT_GT(loss_drops, 0u);
}

TEST(FaultCampaignTest, CoverageAppearsInJsonOnlyForFaultyProfiles) {
  std::string faulty = export_faulty(kLossySpec, 2);
  EXPECT_NE(faulty.find("\"coverage\""), std::string::npos);
  EXPECT_NE(faulty.find("\"fault_profile\""), std::string::npos);

  CampaignEngine engine(small_config(), fast_campaign(), 2, standard_exhibitors());
  CampaignResult clean = engine.run();
  EXPECT_FALSE(clean.coverage.has_value());
  std::string null_profile = export_campaign_json(engine.primary(), clean);
  EXPECT_EQ(null_profile.find("\"coverage\""), std::string::npos);
  EXPECT_EQ(null_profile.find("\"fault_profile\""), std::string::npos);
}

TEST(FaultCampaignTest, ChurnedVpsAreQuarantinedAndTheirDecoysRehomed) {
  // Aggressive churn with a long outage and a hair-trigger quarantine: some
  // VP's session must drop mid-Phase-I, its un-sent decoys must be cancelled
  // and re-planned onto surviving VPs at the barrier.
  const std::string spec = "vp-churn=0.6@8h,quarantine=2,retries=1,rto=30s";
  CampaignResult result = run_faulty(spec, 2);
  ASSERT_TRUE(result.coverage.has_value());
  const CoverageStats& cov = *result.coverage;
  EXPECT_GT(cov.vps_quarantined, 0u);
  EXPECT_GT(cov.decoys_cancelled, 0u);
  EXPECT_GT(cov.decoys_rescheduled, 0u);
  EXPECT_LE(cov.decoys_rescheduled, cov.decoys_cancelled);
  // No emission silently vanishes: every planned or re-homed Phase-I decoy
  // either fired (attempted) or was cancelled. (Cancellations can also hit
  // sweep probes of VPs quarantined after the barrier, hence >=.)
  EXPECT_LE(cov.decoys_attempted, cov.phase1_planned + cov.decoys_rescheduled);
  EXPECT_GE(cov.decoys_attempted + cov.decoys_cancelled,
            cov.phase1_planned + cov.decoys_rescheduled);

  // The re-plan is itself layout-invariant.
  std::string two = export_faulty(spec, 2);
  std::string three = export_faulty(spec, 3);
  EXPECT_EQ(two, three);
}

TEST(FaultCampaignTest, CollectorOutageSwallowsHoneypotTraffic) {
  // A collector outage blanketing most of the capture horizon: replicated
  // decoys that would have hit the US honeypot are dropped at the endpoint.
  CampaignResult faulty =
      run_faulty("hp-outage=US@1h+70h,retries=0,rto=30s,loss=0.001", 2);
  ASSERT_TRUE(faulty.coverage.has_value());
  CampaignEngine clean_engine(small_config(), fast_campaign(), 2,
                              standard_exhibitors());
  CampaignResult clean = clean_engine.run();
  // Strictly fewer hits than the undisturbed campaign, and the endpoint
  // drops are visible in the coverage accounting.
  EXPECT_LT(faulty.hits.size(), clean.hits.size());
  EXPECT_GT(faulty.coverage->honeypot_downtime_drops, 0u);
}

}  // namespace
}  // namespace shadowprobe::core
