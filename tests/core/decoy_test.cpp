#include "core/decoy.h"

#include <gtest/gtest.h>

#include "common/strutil.h"

namespace shadowprobe::core {
namespace {

DecoyId sample_id() {
  DecoyId id;
  id.time_sec = 1234567;
  id.vp = net::Ipv4Addr(45, 32, 1, 9);
  id.dst = net::Ipv4Addr(8, 8, 8, 8);
  id.ttl = 17;
  id.protocol = DecoyProtocol::kTls;
  id.seq = 9982;
  return id;
}

TEST(DecoyLabel, RoundTrip) {
  DecoyId id = sample_id();
  std::string label = encode_decoy_label(id);
  auto decoded = decode_decoy_label(label);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, id);
}

TEST(DecoyLabel, ShapeMatchesPaperFormat) {
  // "<base32>-<digits>", DNS-label-safe, short enough for one label.
  std::string label = encode_decoy_label(sample_id());
  EXPECT_LE(label.size(), 63u);
  auto dash = label.rfind('-');
  ASSERT_NE(dash, std::string::npos);
  EXPECT_EQ(label.substr(dash + 1), "9982");
  for (char c : label.substr(0, dash)) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << c;
  }
}

TEST(DecoyLabel, CaseInsensitiveDecode) {
  // Resolvers may 0x20-randomize query names; identifiers must survive.
  DecoyId id = sample_id();
  std::string upper = encode_decoy_label(id);
  for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  auto decoded = decode_decoy_label(upper);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, id);
}

TEST(DecoyLabel, ChecksumRejectsTampering) {
  std::string label = encode_decoy_label(sample_id());
  // Flip one character of the base32 part.
  std::string tampered = label;
  tampered[0] = tampered[0] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(decode_decoy_label(tampered).has_value());
}

TEST(DecoyLabel, RejectsGarbage) {
  EXPECT_FALSE(decode_decoy_label("").has_value());
  EXPECT_FALSE(decode_decoy_label("no-digits-x").has_value());
  EXPECT_FALSE(decode_decoy_label("plainword").has_value());
  EXPECT_FALSE(decode_decoy_label("-5").has_value());
  EXPECT_FALSE(decode_decoy_label("abc!def-5").has_value());
  EXPECT_FALSE(decode_decoy_label("aaaa-").has_value());
}

TEST(DecoyDomain, BuildsUnderExperimentSuffix) {
  DecoyId id = sample_id();
  net::DnsName domain = decoy_domain(id);
  EXPECT_TRUE(domain.is_subdomain_of(experiment_suffix()));
  EXPECT_TRUE(ends_with(domain.str(), ".www.shadowprobe-exp.com"));
  auto extracted = decoy_from_name(domain);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, id);
}

TEST(DecoyDomain, RejectsWrongShapeNames) {
  EXPECT_FALSE(decoy_from_name(net::DnsName::must_parse("www.shadowprobe-exp.com")));
  EXPECT_FALSE(decoy_from_name(net::DnsName::must_parse("x.other.com")));
  // Extra level under a valid decoy domain is not a decoy.
  net::DnsName deep = decoy_domain(sample_id()).child("extra");
  EXPECT_FALSE(decoy_from_name(deep).has_value());
  // Non-decoy label directly under the suffix.
  EXPECT_FALSE(decoy_from_name(experiment_suffix().child("hello")).has_value());
}

TEST(DecoyDomain, FromHostString) {
  DecoyId id = sample_id();
  std::string host = decoy_domain(id).str();
  auto extracted = decoy_from_host(host);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, id);
  EXPECT_FALSE(decoy_from_host("not a hostname..").has_value());
  EXPECT_FALSE(decoy_from_host("example.com").has_value());
}

class DecoyLabelSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecoyLabelSweep, AllTtlAndProtocolVariantsRoundTrip) {
  // Phase II generates one identifier per (TTL, protocol); every variant
  // must decode to exactly its own parameters.
  int ttl = GetParam();
  for (DecoyProtocol protocol :
       {DecoyProtocol::kDns, DecoyProtocol::kHttp, DecoyProtocol::kTls}) {
    DecoyId id;
    id.time_sec = 1700000000u + static_cast<std::uint32_t>(ttl);
    id.vp = net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(ttl), 1);
    id.dst = net::Ipv4Addr(114, 114, 114, 114);
    id.ttl = static_cast<std::uint8_t>(ttl);
    id.protocol = protocol;
    id.seq = static_cast<std::uint32_t>(ttl) * 1000 + static_cast<std::uint32_t>(protocol);
    auto decoded = decoy_from_name(decoy_domain(id));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, id);
  }
}

INSTANTIATE_TEST_SUITE_P(TtlSweep, DecoyLabelSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64, 255));

TEST(DecoyLabel, DistinctIdsYieldDistinctLabels) {
  DecoyId a = sample_id();
  DecoyId b = sample_id();
  b.ttl = 18;
  EXPECT_NE(encode_decoy_label(a), encode_decoy_label(b));
  DecoyId c = sample_id();
  c.seq = 9983;
  EXPECT_NE(encode_decoy_label(a), encode_decoy_label(c));
}

TEST(ComboLabel, FormatsLikeThePaper) {
  EXPECT_EQ(combo_label(DecoyProtocol::kDns, RequestProtocol::kHttp), "DNS-HTTP");
  EXPECT_EQ(combo_label(DecoyProtocol::kTls, RequestProtocol::kHttps), "TLS-HTTPS");
  EXPECT_EQ(combo_label(DecoyProtocol::kHttp, RequestProtocol::kDns), "HTTP-DNS");
}

}  // namespace
}  // namespace shadowprobe::core
