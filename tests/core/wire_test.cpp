// Wire-format tests: framing, CRC, and the encode -> decode -> encode
// byte-equality property over randomized ledgers and logbooks. Corruption
// tests pin the rejection contract: bad magic, foreign version, short
// payloads, trailing garbage and checksum mismatches must come back as
// Error values — never UB, never a crash.
#include "core/wire.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/rng.h"

namespace shadowprobe::core::wire {
namespace {

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

// -- crc32 -------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView{}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, SensitiveToEveryByte) {
  Bytes data = bytes_of("shadowprobe wire frame");
  std::uint32_t reference = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(crc32(mutated), reference) << "flip at byte " << i;
  }
}

// -- framing -----------------------------------------------------------------

TEST(Frame, RoundTrip) {
  Bytes payload = bytes_of("hello shards");
  Bytes encoded = encode_frame(MsgType::kBarrierShard, 7, payload);
  auto decoded = decode_frame(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().type, MsgType::kBarrierShard);
  EXPECT_EQ(decoded.value().shard_id, 7u);
  EXPECT_EQ(decoded.value().payload, payload);
}

TEST(Frame, EmptyPayloadRoundTrip) {
  Bytes encoded = encode_frame(MsgType::kRunScreening, 0, BytesView{});
  auto decoded = decode_frame(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().type, MsgType::kRunScreening);
  EXPECT_TRUE(decoded.value().payload.empty());
}

TEST(Frame, RejectsBadMagic) {
  Bytes encoded = encode_frame(MsgType::kInit, 0, bytes_of("x"));
  encoded[0] ^= 0xFF;
  EXPECT_FALSE(decode_frame(encoded).ok());
}

TEST(Frame, RejectsForeignVersion) {
  Bytes encoded = encode_frame(MsgType::kInit, 0, bytes_of("x"));
  encoded[5] ^= 0x01;  // low byte of the big-endian u16 version
  EXPECT_FALSE(decode_frame(encoded).ok());
}

TEST(Frame, RejectsUnknownType) {
  Bytes encoded = encode_frame(MsgType::kInit, 0, bytes_of("x"));
  encoded[6] = 0x7F;  // type far outside the enum
  EXPECT_FALSE(decode_frame(encoded).ok());
}

TEST(Frame, RejectsEveryTruncation) {
  Bytes encoded = encode_frame(MsgType::kPhase1, 3, bytes_of("payload bytes"));
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = decode_frame(BytesView(encoded.data(), len));
    EXPECT_FALSE(decoded.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(Frame, RejectsTrailingGarbage) {
  Bytes encoded = encode_frame(MsgType::kPhase1, 3, bytes_of("payload"));
  encoded.push_back(0x00);
  EXPECT_FALSE(decode_frame(encoded).ok());
}

TEST(Frame, RejectsChecksumMismatch) {
  Bytes payload = bytes_of("bytes that matter");
  Bytes encoded = encode_frame(MsgType::kFinalShard, 1, payload);
  // Flip one payload byte; the header still parses, the CRC must not.
  encoded[16] ^= 0x40;
  auto decoded = decode_frame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("checksum"), std::string::npos)
      << decoded.error().message;
}

TEST(Frame, RejectsImplausibleLength) {
  Bytes encoded = encode_frame(MsgType::kInit, 0, bytes_of("x"));
  // Overwrite the big-endian payload length with kMaxPayload + 1.
  std::uint32_t bogus = kMaxPayload + 1;
  encoded[12] = static_cast<std::uint8_t>(bogus >> 24);
  encoded[13] = static_cast<std::uint8_t>(bogus >> 16);
  encoded[14] = static_cast<std::uint8_t>(bogus >> 8);
  encoded[15] = static_cast<std::uint8_t>(bogus);
  EXPECT_FALSE(decode_frame(encoded).ok());
}

// -- randomized payload round-trips -----------------------------------------

// gtest's ASSERT_ macros need a void function, so the builder fills an
// out-param.
void build_random_ledger(Rng& rng, std::size_t paths, std::size_t decoys,
                         DecoyLedger& out) {
  DecoyLedger ledger;
  std::vector<PathRecord> table;
  table.reserve(paths);
  for (std::size_t i = 0; i < paths; ++i) {
    PathRecord path;
    path.path_id = static_cast<std::uint32_t>(i);
    path.vp_index = static_cast<std::int32_t>(rng.range(0, 199));
    path.dest_kind = static_cast<DestKind>(rng.range(0, 4));
    path.dest_name = "dest-" + std::to_string(rng.range(0, 9999));
    path.dest_addr = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
    path.dest_country = rng.chance(0.5) ? "US" : "CN";
    path.protocol = static_cast<DecoyProtocol>(rng.range(0, 2));
    table.push_back(std::move(path));
  }
  ledger.seed_paths(table);
  for (std::size_t i = 0; i < decoys; ++i) {
    DecoyRecord record;
    record.id.time_sec = static_cast<std::uint32_t>(rng.range(0, 1 << 20));
    record.id.vp = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
    record.id.dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
    record.id.ttl = static_cast<std::uint8_t>(rng.range(1, 64));
    record.id.protocol = static_cast<DecoyProtocol>(rng.range(0, 2));
    record.id.seq = static_cast<std::uint32_t>(i);
    record.domain =
        net::DnsName::must_parse("d" + std::to_string(i) + ".www.example.com");
    record.sent = static_cast<SimTime>(rng.range(0, 1 << 30));
    record.path_id = static_cast<std::uint32_t>(
        paths > 0 ? rng.range(0, static_cast<int>(paths) - 1) : 0);
    record.phase2 = rng.chance(0.2);
    record.dest_responded = rng.chance(0.8);
    record.response_time = record.dest_responded ? record.sent + rng.range(1, 1000) : 0;
    ASSERT_TRUE(ledger.restore_decoy(record));
  }
  out = std::move(ledger);
}

std::vector<HoneypotHit> random_hits(Rng& rng, std::size_t count) {
  std::vector<HoneypotHit> hits;
  hits.reserve(count);
  const char* locations[] = {"US", "DE", "SG"};
  for (std::size_t i = 0; i < count; ++i) {
    HoneypotHit hit;
    hit.time = static_cast<SimTime>(rng.range(0, 1 << 30));
    hit.protocol = static_cast<RequestProtocol>(rng.range(0, 2));
    hit.origin = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
    hit.honeypot_addr = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
    hit.location = locations[rng.range(0, 2)];
    hit.domain = net::DnsName::must_parse("h" + std::to_string(i) + ".www.example.com");
    if (rng.chance(0.6)) {
      DecoyId id;
      id.time_sec = static_cast<std::uint32_t>(rng.range(0, 1 << 20));
      id.vp = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
      id.dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.bits()));
      id.ttl = static_cast<std::uint8_t>(rng.range(1, 64));
      id.protocol = static_cast<DecoyProtocol>(rng.range(0, 2));
      id.seq = static_cast<std::uint32_t>(rng.range(0, 1 << 20));
      hit.decoy = id;
    }
    if (hit.protocol == RequestProtocol::kHttp) {
      hit.http_method = rng.chance(0.5) ? "GET" : "POST";
      hit.http_target = "/p" + std::to_string(rng.range(0, 99));
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

TEST(WireRoundTrip, LedgerEncodeDecodeEncodeBytesEqual) {
  Rng rng(0x77697265u);  // "wire"
  for (int round = 0; round < 8; ++round) {
    DecoyLedger ledger;
    build_random_ledger(rng, 1 + round * 3, 5 + round * 11, ledger);
    ByteWriter first;
    encode_ledger(first, ledger);
    Bytes once = std::move(first).take();

    ByteReader r{BytesView(once)};
    auto decoded = decode_ledger(r);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);

    ByteWriter second;
    encode_ledger(second, decoded.value());
    EXPECT_EQ(once, std::move(second).take()) << "round " << round;
  }
}

TEST(WireRoundTrip, HitsEncodeDecodeEncodeBytesEqual) {
  Rng rng(0x68697473u);  // "hits"
  for (int round = 0; round < 8; ++round) {
    std::vector<HoneypotHit> hits = random_hits(rng, 3 + round * 17);
    ByteWriter first;
    encode_hits(first, hits);
    Bytes once = std::move(first).take();

    ByteReader r{BytesView(once)};
    auto decoded = decode_hits(r);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(r.remaining(), 0u);
    ASSERT_EQ(decoded.value().size(), hits.size());

    ByteWriter second;
    encode_hits(second, decoded.value());
    EXPECT_EQ(once, std::move(second).take()) << "round " << round;
  }
}

TEST(WireRoundTrip, CoverageAndCounters) {
  CoverageStats cov;
  cov.phase1_planned = 1000;
  cov.decoys_attempted = 990;
  cov.decoys_delivered = 950;
  cov.decoys_lost = 40;
  cov.decoys_retried = 60;
  cov.retry_attempts = 75;
  cov.tcp_retransmissions = 12;
  cov.decoys_cancelled = 10;
  cov.decoys_rescheduled = 8;
  cov.phase2_deferred = 3;
  cov.vps_quarantined = 2;
  cov.honeypot_downtime_drops = 17;
  cov.link_drops.push_back({"cn-gw", "us-hp", 5, 2});
  cov.link_drops.push_back({"de-hp", "ru-vp3", 1, 0});
  ByteWriter w;
  encode_coverage(w, cov);
  Bytes once = std::move(w).take();
  ByteReader r{BytesView(once)};
  CoverageStats back = decode_coverage(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  ByteWriter again;
  encode_coverage(again, back);
  EXPECT_EQ(once, std::move(again).take());
  EXPECT_EQ(back.link_drops.size(), 2u);
  EXPECT_EQ(back.link_drops[0].node_a, "cn-gw");
  EXPECT_EQ(back.link_drops[0].link_loss, 5u);
}

TEST(WireRoundTrip, PlanEmissions) {
  Rng rng(0x706c616eu);  // "plan"
  std::vector<PlanEmission> emissions;
  for (int i = 0; i < 257; ++i) {
    PlanEmission emission;
    emission.seq = static_cast<std::uint32_t>(i);
    emission.path_id = static_cast<std::uint32_t>(rng.range(0, 40));
    emission.vp_index = static_cast<std::int32_t>(rng.range(-1, 30));
    emission.when = static_cast<SimTime>(rng.range(0, 1 << 30));
    emission.ttl = static_cast<std::uint8_t>(rng.range(1, 64));
    emission.phase2 = rng.chance(0.3);
    emissions.push_back(emission);
  }
  ByteWriter w;
  encode_emissions(w, emissions);
  Bytes once = std::move(w).take();
  ByteReader r{BytesView(once)};
  auto back = decode_emissions(r);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(r.remaining(), 0u);
  ByteWriter again;
  encode_emissions(again, back.value());
  EXPECT_EQ(once, std::move(again).take());
}

// -- malformed payload rejection --------------------------------------------

TEST(WireDecode, LedgerRejectsEveryTruncation) {
  Rng rng(0x74727563u);  // "truc"
  DecoyLedger ledger;
  build_random_ledger(rng, 4, 9, ledger);
  ByteWriter w;
  encode_ledger(w, ledger);
  Bytes full = std::move(w).take();
  // Stride keeps the quadratic scan fast; offset 0 and the last byte are
  // always covered.
  for (std::size_t len = 0; len < full.size(); len += 7) {
    ByteReader r{BytesView(full.data(), len)};
    auto decoded = decode_ledger(r);
    EXPECT_FALSE(decoded.ok() && r.ok() && r.remaining() == 0)
        << "accepted a " << len << "-byte prefix of " << full.size();
  }
}

TEST(WireDecode, LedgerRejectsDuplicateSeq) {
  DecoyLedger ledger;
  DecoyRecord record;
  record.id.seq = 42;
  record.domain = net::DnsName::must_parse("dup.www.example.com");
  ASSERT_TRUE(ledger.restore_decoy(record));
  ASSERT_FALSE(ledger.restore_decoy(record)) << "ledger must reject in-process too";

  // Hand-craft an encoding holding the same record twice: encode a
  // two-record ledger, then splice record 0's bytes over record 1's. Easier:
  // encode two ledgers and merge their payloads is fragile; instead encode
  // one record and bump the count field.
  ByteWriter w;
  encode_ledger(w, ledger);
  Bytes bytes = std::move(w).take();
  // Layout: u32 path_count (0) | u32 decoy_count | records... Duplicate the
  // single record's bytes and fix the count.
  constexpr std::size_t kHeader = 8;
  Bytes doubled(bytes.begin(), bytes.begin() + kHeader);
  doubled[7] = 2;  // decoy_count 1 -> 2 (big-endian low byte)
  doubled.insert(doubled.end(), bytes.begin() + kHeader, bytes.end());
  doubled.insert(doubled.end(), bytes.begin() + kHeader, bytes.end());
  ByteReader r{BytesView(doubled)};
  auto decoded = decode_ledger(r);
  EXPECT_FALSE(decoded.ok()) << "duplicate seq must be rejected";
}

TEST(WireDecode, HitsRejectBadEnum) {
  std::vector<HoneypotHit> hits(1);
  hits[0].location = "US";
  ByteWriter w;
  encode_hits(w, hits);
  Bytes bytes = std::move(w).take();
  bytes[4 + 8] = 0x9E;  // protocol byte right after count + time
  ByteReader r{BytesView(bytes)};
  auto decoded = decode_hits(r);
  EXPECT_FALSE(decoded.ok() && r.ok());
}

TEST(WireDecode, InitMessageRoundTrip) {
  InitMsg msg;
  msg.shard_count = 6;
  msg.proc_index = 2;
  msg.proc_count = 3;
  msg.bed_config.topology.seed = 777;
  msg.bed_config.topology.apply_scale(0.5);
  msg.config.screening = false;
  msg.config.analysis_workers = 4;
  auto profile = sim::FaultProfile::parse("loss=0.05,jitter=10ms,retries=2");
  ASSERT_TRUE(profile.ok());
  msg.config.faults = profile.value();

  Bytes payload = encode_init(msg);
  auto back = decode_init(payload);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().shard_count, 6u);
  EXPECT_EQ(back.value().proc_index, 2u);
  EXPECT_EQ(back.value().proc_count, 3u);
  EXPECT_EQ(back.value().bed_config.topology.seed, 777u);
  EXPECT_FALSE(back.value().config.screening);
  EXPECT_EQ(back.value().config.analysis_workers, 4);
  EXPECT_TRUE(back.value().config.faults.enabled());
  // Encode -> decode -> encode byte-equality holds for whole messages too.
  EXPECT_EQ(payload, encode_init(back.value()));

  // Truncations never crash or succeed.
  for (std::size_t len = 0; len < payload.size(); len += 11) {
    EXPECT_FALSE(decode_init(BytesView(payload.data(), len)).ok());
  }
}

TEST(WireDecode, BarrierMessageRoundTrip) {
  Rng rng(0x62617272u);  // "barr"
  BarrierMsg msg;
  build_random_ledger(rng, 3, 7, msg.ledger);
  msg.hits = random_hits(rng, 5);
  msg.replicated = {3, 9, 27};
  msg.quarantined = {1, 4};
  msg.cancelled = {10, 11, 12};
  msg.carries = {{.vp_index = 4, .failure_streak = 3, .quarantined = true,
                  .quarantined_at = 90 * kMinute},
                 {.vp_index = 7, .failure_streak = 1, .quarantined = false,
                  .quarantined_at = 0}};
  Bytes payload = encode_barrier(msg);
  auto back = decode_barrier(payload);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().replicated, msg.replicated);
  EXPECT_EQ(back.value().quarantined, msg.quarantined);
  EXPECT_EQ(back.value().cancelled, msg.cancelled);
  ASSERT_EQ(back.value().carries.size(), 2u);
  EXPECT_EQ(back.value().carries[0].vp_index, 4u);
  EXPECT_EQ(back.value().carries[0].failure_streak, 3);
  EXPECT_TRUE(back.value().carries[0].quarantined);
  EXPECT_EQ(back.value().carries[0].quarantined_at, 90 * kMinute);
  EXPECT_FALSE(back.value().carries[1].quarantined);
  EXPECT_EQ(payload, encode_barrier(back.value()));
}

TEST(WireDecode, InitSchedulerRoundTripAndBadByteRejected) {
  InitMsg msg;
  msg.shard_count = 4;
  msg.proc_index = 0;
  msg.proc_count = 2;
  msg.scheduler = SchedulerMode::kSteal;
  Bytes payload = encode_init(msg);
  auto back = decode_init(payload);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().scheduler, SchedulerMode::kSteal);
  EXPECT_EQ(payload, encode_init(back.value()));
  // The scheduler byte sits right after the three layout u32s; any value
  // beyond kSteal must be rejected, not silently mapped.
  payload[12] = 7;
  auto bad = decode_init(payload);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("scheduler"), std::string::npos);
}

TEST(WireRoundTrip, DealListAndCarries) {
  const std::vector<std::uint32_t> deal = {0, 3, 1, 2, 1, 0};
  std::vector<VpCarry> carries = {{.vp_index = 2, .failure_streak = 5,
                                   .quarantined = true, .quarantined_at = kHour}};
  ByteWriter w;
  put_u32_list(w, deal);
  put_carries(w, carries);
  Bytes bytes = std::move(w).take();
  ByteReader r{BytesView(bytes)};
  std::vector<std::uint32_t> deal_back;
  ASSERT_TRUE(get_u32_list(r, deal_back));
  EXPECT_EQ(deal_back, deal);
  std::vector<VpCarry> carries_back;
  ASSERT_TRUE(get_carries(r, carries_back));
  ASSERT_EQ(carries_back.size(), 1u);
  EXPECT_EQ(carries_back[0].vp_index, 2u);
  EXPECT_EQ(carries_back[0].failure_streak, 5);
  EXPECT_TRUE(carries_back[0].quarantined);
  EXPECT_EQ(carries_back[0].quarantined_at, kHour);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireDecode, CarriesRejectBadQuarantineFlag) {
  std::vector<VpCarry> carries(1);
  carries[0].vp_index = 5;
  ByteWriter w;
  put_carries(w, carries);
  Bytes bytes = std::move(w).take();
  bytes[4 + 8] = 2;  // flag byte after count u32 + vp_index u32 + streak u32
  ByteReader r{BytesView(bytes)};
  std::vector<VpCarry> out;
  EXPECT_FALSE(get_carries(r, out));
}

// -- supervision wire surface ------------------------------------------------

TEST(WireHeartbeat, RoundTripAndMalformedRejected) {
  HeartbeatMsg msg;
  msg.proc_index = 3;
  msg.seq = 0x1122334455667788ull;
  Bytes payload = encode_heartbeat(msg);
  auto back = decode_heartbeat(payload);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().proc_index, 3u);
  EXPECT_EQ(back.value().seq, 0x1122334455667788ull);
  EXPECT_EQ(payload, encode_heartbeat(back.value()));

  // Trailing garbage and every truncation are rejected, never UB.
  Bytes padded = payload;
  padded.push_back(0x00);
  EXPECT_FALSE(decode_heartbeat(padded).ok());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode_heartbeat(BytesView(payload.data(), len)).ok());
  }
}

TEST(WireDecode, InitHeartbeatIntervalRoundTripAndImplausibleRejected) {
  InitMsg msg;
  msg.shard_count = 2;
  msg.proc_index = 0;
  msg.proc_count = 1;
  msg.heartbeat_ms = 250;
  Bytes payload = encode_init(msg);
  auto back = decode_init(payload);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().heartbeat_ms, 250u);
  EXPECT_EQ(payload, encode_init(back.value()));

  // 0 = disabled is valid; anything beyond an hour is a corrupt frame, not
  // a configuration.
  msg.heartbeat_ms = 0;
  EXPECT_TRUE(decode_init(encode_init(msg)).ok());
  msg.heartbeat_ms = 3'600'001;
  auto bad = decode_init(encode_init(msg));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("heartbeat"), std::string::npos)
      << bad.error().message;
}

/// Read/write fds of a pipe, closed on destruction unless already closed.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_read() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(FrameChannelTimeout, RecvTimesOutOnSilentPipe) {
  // Nothing ever arrives: recv must give up at the deadline with the
  // dedicated timeout error instead of blocking forever (the pre-supervision
  // behavior, which let one stalled worker hang the whole controller).
  Pipe pipe;
  FrameChannel chan(pipe.fds[0], pipe.fds[1]);
  const auto start = std::chrono::steady_clock::now();
  auto result = chan.recv(/*timeout_ms=*/100);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().message, kTimeoutMessage);
  EXPECT_GE(elapsed, std::chrono::milliseconds(90));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(FrameChannelTimeout, RecvTimesOutMidFrame) {
  // A frame that starts arriving and then stalls must also hit the deadline:
  // the timeout covers every read, not just the first byte.
  Pipe pipe;
  FrameChannel chan(pipe.fds[0], pipe.fds[1]);
  Bytes frame = encode_frame(MsgType::kBarrierShard, 1, Bytes(64, 0xAB));
  // The full 16-byte header plus a few payload bytes, then silence.
  constexpr std::size_t kPartial = 19;
  ASSERT_LT(kPartial, frame.size());
  ASSERT_EQ(::write(pipe.fds[1], frame.data(), kPartial),
            static_cast<ssize_t>(kPartial));
  auto result = chan.recv(/*timeout_ms=*/100);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().message, kTimeoutMessage);
}

TEST(FrameChannelTimeout, RecvReturnsFrameArrivingBeforeDeadline) {
  Pipe pipe;
  FrameChannel chan(pipe.fds[0], pipe.fds[1]);
  Bytes frame = encode_frame(MsgType::kRunScreening, 0, BytesView{});
  ASSERT_EQ(::write(pipe.fds[1], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  auto result = chan.recv(/*timeout_ms=*/5000);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().type, MsgType::kRunScreening);
}

TEST(FrameChannelSigpipe, SendToClosedPipeThrowsInsteadOfKillingProcess) {
  // Regression: a worker dying between poll and write used to deliver
  // SIGPIPE to the controller (pipes have no MSG_NOSIGNAL), killing the
  // whole campaign. The channel masks SIGPIPE around pipe writes, so EPIPE
  // surfaces as an exception the supervisor turns into a worker-lost event.
  // Pin the default disposition so this test actually proves the masking.
  ::signal(SIGPIPE, SIG_DFL);
  Pipe pipe;
  FrameChannel chan(pipe.fds[0], pipe.fds[1]);
  pipe.close_read();
  EXPECT_THROW(chan.send(MsgType::kRunScreening, 0, Bytes(1024, 0x55)),
               std::runtime_error);
  // The process must survive with no SIGPIPE left pending for someone else.
  sigset_t pending;
  ASSERT_EQ(::sigpending(&pending), 0);
  EXPECT_NE(sigismember(&pending, SIGPIPE), 1);
}

TEST(WireDecode, CarriesRejectTruncation) {
  std::vector<VpCarry> carries = {{.vp_index = 1}, {.vp_index = 2}};
  ByteWriter w;
  put_carries(w, carries);
  Bytes bytes = std::move(w).take();
  for (std::size_t len = 0; len < bytes.size(); len += 3) {
    ByteReader r{BytesView(bytes.data(), len)};
    std::vector<VpCarry> out;
    EXPECT_FALSE(get_carries(r, out) && r.remaining() == 0);
  }
}

}  // namespace
}  // namespace shadowprobe::core::wire
