#include "core/ledger.h"

#include <gtest/gtest.h>

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() {
    vp.id = "vp";
    vp.addr = Ipv4Addr(30, 0, 0, 1);
  }
  PathRecord make_path(const std::string& dest) {
    PathRecord path;
    path.vp = &vp;
    path.dest_name = dest;
    path.dest_addr = Ipv4Addr(8, 8, 8, 8);
    return path;
  }
  topo::VantagePoint vp;
  DecoyLedger ledger;
};

TEST_F(LedgerTest, PathIdsAreSequential) {
  EXPECT_EQ(ledger.add_path(make_path("a")), 0u);
  EXPECT_EQ(ledger.add_path(make_path("b")), 1u);
  EXPECT_EQ(ledger.paths().size(), 2u);
  EXPECT_EQ(ledger.path(1).dest_name, "b");
}

TEST_F(LedgerTest, CreateFillsIdentityFields) {
  std::uint32_t pid = ledger.add_path(make_path("a"));
  DecoyRecord record = ledger.create(pid, 90 * kSecond, vp.addr, Ipv4Addr(8, 8, 8, 8),
                                     DecoyProtocol::kTls, 7, true);
  EXPECT_EQ(record.id.seq, 0u);
  EXPECT_EQ(record.id.time_sec, 90u);
  EXPECT_EQ(record.id.vp, vp.addr);
  EXPECT_EQ(record.id.ttl, 7);
  EXPECT_EQ(record.id.protocol, DecoyProtocol::kTls);
  EXPECT_TRUE(record.phase2);
  EXPECT_FALSE(record.dest_responded);
  // The embedded domain decodes back to the same identity.
  auto decoded = decoy_from_name(record.domain);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record.id);
}

TEST_F(LedgerTest, SequenceNumbersAreDenseAndLookupable) {
  std::uint32_t pid = ledger.add_path(make_path("a"));
  for (int i = 0; i < 10; ++i) {
    ledger.create(pid, 0, vp.addr, Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64, false);
  }
  EXPECT_EQ(ledger.decoy_count(), 10u);
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    ASSERT_NE(ledger.by_seq(seq), nullptr);
    EXPECT_EQ(ledger.by_seq(seq)->id.seq, seq);
  }
  EXPECT_EQ(ledger.by_seq(10), nullptr);
  EXPECT_EQ(ledger.by_seq(4242), nullptr);
}

TEST_F(LedgerTest, MarkResponseIsFirstWriteWins) {
  std::uint32_t pid = ledger.add_path(make_path("a"));
  DecoyRecord record = ledger.create(pid, 0, vp.addr, Ipv4Addr(8, 8, 8, 8),
                                     DecoyProtocol::kDns, 64, false);
  ledger.mark_response(record.id.seq, 5 * kSecond);
  ledger.mark_response(record.id.seq, 9 * kSecond);  // duplicate response
  const DecoyRecord* stored = ledger.by_seq(record.id.seq);
  EXPECT_TRUE(stored->dest_responded);
  EXPECT_EQ(stored->response_time, 5 * kSecond);
  ledger.mark_response(4242, kSecond);  // unknown seq: no-op
}

}  // namespace
}  // namespace shadowprobe::core
