#include "core/ledger.h"

#include <gtest/gtest.h>

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() {
    vp.id = "vp";
    vp.addr = Ipv4Addr(30, 0, 0, 1);
  }
  PathRecord make_path(const std::string& dest) {
    PathRecord path;
    path.vp = &vp;
    path.dest_name = dest;
    path.dest_addr = Ipv4Addr(8, 8, 8, 8);
    return path;
  }
  topo::VantagePoint vp;
  DecoyLedger ledger;
};

TEST_F(LedgerTest, PathIdsAreSequential) {
  EXPECT_EQ(ledger.add_path(make_path("a")), 0u);
  EXPECT_EQ(ledger.add_path(make_path("b")), 1u);
  EXPECT_EQ(ledger.paths().size(), 2u);
  EXPECT_EQ(ledger.path(1).dest_name, "b");
}

TEST_F(LedgerTest, CreateFillsIdentityFields) {
  std::uint32_t pid = ledger.add_path(make_path("a"));
  DecoyRecord record = ledger.create(pid, 90 * kSecond, vp.addr, Ipv4Addr(8, 8, 8, 8),
                                     DecoyProtocol::kTls, 7, true);
  EXPECT_EQ(record.id.seq, 0u);
  EXPECT_EQ(record.id.time_sec, 90u);
  EXPECT_EQ(record.id.vp, vp.addr);
  EXPECT_EQ(record.id.ttl, 7);
  EXPECT_EQ(record.id.protocol, DecoyProtocol::kTls);
  EXPECT_TRUE(record.phase2);
  EXPECT_FALSE(record.dest_responded);
  // The embedded domain decodes back to the same identity.
  auto decoded = decoy_from_name(record.domain);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record.id);
}

TEST_F(LedgerTest, SequenceNumbersAreDenseAndLookupable) {
  std::uint32_t pid = ledger.add_path(make_path("a"));
  for (int i = 0; i < 10; ++i) {
    ledger.create(pid, 0, vp.addr, Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64, false);
  }
  EXPECT_EQ(ledger.decoy_count(), 10u);
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    ASSERT_NE(ledger.by_seq(seq), nullptr);
    EXPECT_EQ(ledger.by_seq(seq)->id.seq, seq);
  }
  EXPECT_EQ(ledger.by_seq(10), nullptr);
  EXPECT_EQ(ledger.by_seq(4242), nullptr);
}

TEST_F(LedgerTest, ShardTagSeparatesAutoAllocatedIds) {
  DecoyLedger shard0;
  DecoyLedger shard1;
  shard0.set_shard(0);
  shard1.set_shard(1);
  std::uint32_t p0 = shard0.add_path(make_path("a"));
  std::uint32_t p1 = shard1.add_path(make_path("b"));
  // Shard 0 is tagged too (shard+1), so both ranges are disjoint from each
  // other and from the untagged preassigned range.
  EXPECT_NE(p0 & ~DecoyLedger::kLocalIdMask, 0u);
  EXPECT_NE(p1 & ~DecoyLedger::kLocalIdMask, 0u);
  EXPECT_NE(p0 >> DecoyLedger::kShardShift, p1 >> DecoyLedger::kShardShift);
  DecoyRecord r0 = shard0.create(p0, 0, vp.addr, Ipv4Addr(8, 8, 8, 8),
                                 DecoyProtocol::kDns, 64, false);
  DecoyRecord r1 = shard1.create(p1, 0, vp.addr, Ipv4Addr(8, 8, 8, 8),
                                 DecoyProtocol::kDns, 64, false);
  EXPECT_NE(r0.id.seq, r1.id.seq);
}

TEST_F(LedgerTest, MergeDeduplicatesSeededPathsAndUnionsDecoys) {
  // Two shards seeded with the same plan table, each emitting a disjoint
  // half of the preassigned decoys — the CampaignEngine regime.
  PathRecord a = make_path("a");
  a.path_id = 0;
  a.vp_index = 0;
  PathRecord b = make_path("b");
  b.path_id = 1;
  b.vp_index = 0;
  std::vector<PathRecord> plan = {a, b};
  DecoyLedger shard0;
  DecoyLedger shard1;
  shard0.set_shard(0);
  shard1.set_shard(1);
  shard0.seed_paths(plan);
  shard1.seed_paths(plan);
  shard0.create_preassigned(0, 0, kSecond, vp.addr, Ipv4Addr(8, 8, 8, 8),
                            DecoyProtocol::kDns, 64, false);
  shard1.create_preassigned(1, 1, 2 * kSecond, vp.addr, Ipv4Addr(8, 8, 8, 8),
                            DecoyProtocol::kDns, 64, false);

  DecoyLedger merged;
  merged.seed_paths(plan);
  auto stats0 = merged.merge(shard0);
  auto stats1 = merged.merge(shard1);
  merged.finalize();
  EXPECT_EQ(stats0.remapped_paths + stats1.remapped_paths, 0u);
  EXPECT_EQ(stats0.remapped_seqs + stats1.remapped_seqs, 0u);
  EXPECT_EQ(merged.paths().size(), 2u);  // plan paths deduplicated, not doubled
  ASSERT_EQ(merged.decoy_count(), 2u);
  EXPECT_EQ(merged.decoys()[0].id.seq, 0u);
  EXPECT_EQ(merged.decoys()[1].id.seq, 1u);
  EXPECT_EQ(merged.by_seq(1)->sent, 2 * kSecond);
}

TEST_F(LedgerTest, MergeRemapsCollidingForeignIds) {
  // Two untagged ledgers allocate overlapping ids for *different* paths and
  // decoys; the merge must keep both, remapping the second to free ids.
  DecoyLedger lhs;
  DecoyLedger rhs;
  std::uint32_t lp = lhs.add_path(make_path("left"));
  std::uint32_t rp = rhs.add_path(make_path("right"));
  EXPECT_EQ(lp, rp);  // both allocated id 0
  lhs.create(lp, kSecond, vp.addr, Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64, false);
  rhs.create(rp, 2 * kSecond, vp.addr, Ipv4Addr(9, 9, 9, 9), DecoyProtocol::kHttp, 64,
             false);
  net::DnsName rhs_domain = rhs.decoys()[0].domain;

  DecoyLedger merged;
  merged.merge(lhs);
  auto stats = merged.merge(rhs);
  merged.finalize();
  EXPECT_EQ(stats.remapped_paths, 1u);
  EXPECT_EQ(stats.remapped_seqs, 1u);
  ASSERT_EQ(merged.paths().size(), 2u);
  ASSERT_EQ(merged.decoy_count(), 2u);
  // The remapped decoy follows its remapped path and keeps the as-emitted
  // domain (the label already left the wire).
  const DecoyRecord* moved = merged.by_seq(1);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->domain, rhs_domain);
  EXPECT_EQ(merged.path(moved->path_id).dest_name, "right");
}

TEST_F(LedgerTest, MergeSkipsExactDuplicates) {
  DecoyLedger lhs;
  std::uint32_t pid = lhs.add_path(make_path("a"));
  lhs.create(pid, kSecond, vp.addr, Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64, false);
  DecoyLedger merged;
  merged.merge(lhs);
  auto stats = merged.merge(lhs);  // merging the same ledger twice
  EXPECT_EQ(stats.merged_paths, 0u);
  EXPECT_EQ(stats.merged_decoys, 0u);
  EXPECT_EQ(merged.paths().size(), 1u);
  EXPECT_EQ(merged.decoy_count(), 1u);
}

TEST_F(LedgerTest, RebindVpsFollowsVpIndex) {
  std::vector<topo::VantagePoint> replica(2);
  replica[0].id = "first";
  replica[1].id = "second";
  PathRecord path = make_path("a");
  path.vp_index = 1;
  path.vp = nullptr;
  DecoyLedger ledger2;
  ledger2.add_path(path);
  ledger2.rebind_vps(replica);
  EXPECT_EQ(ledger2.paths()[0].vp, &replica[1]);
}

TEST_F(LedgerTest, MarkResponseIsFirstWriteWins) {
  std::uint32_t pid = ledger.add_path(make_path("a"));
  DecoyRecord record = ledger.create(pid, 0, vp.addr, Ipv4Addr(8, 8, 8, 8),
                                     DecoyProtocol::kDns, 64, false);
  ledger.mark_response(record.id.seq, 5 * kSecond);
  ledger.mark_response(record.id.seq, 9 * kSecond);  // duplicate response
  const DecoyRecord* stored = ledger.by_seq(record.id.seq);
  EXPECT_TRUE(stored->dest_responded);
  EXPECT_EQ(stored->response_time, 5 * kSecond);
  ledger.mark_response(4242, kSecond);  // unknown seq: no-op
}

}  // namespace
}  // namespace shadowprobe::core
