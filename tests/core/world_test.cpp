// World / ShardState split invariants.
//
// The shared-World substrate must be a pure memory optimisation: a campaign
// executed over frozen per-shard instances of one World exports exactly the
// bytes of a campaign over independently built replicas, with or without
// fault injection, at any shard count. And the sharing must stop at the
// structural layer — two Testbeds instantiated from one World alias the
// topology/layout/blocklist but never each other's live state (logbooks,
// resolver instances, handler tables).
#include "core/world.h"

#include <gtest/gtest.h>

#include <set>

#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "core/testbed.h"
#include "net/udp.h"
#include "shadow/profiles.h"
#include "sim/udp_util.h"

namespace shadowprobe::core {
namespace {

TestbedConfig small_config() {
  TestbedConfig config;
  config.topology.seed = 61;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

CampaignEngine::Decorator standard_exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    shadow::ShadowConfig shadow_config;
    shadow_config.fleet_size = 2;
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow_config));
  };
}

std::string run_with_mode(SubstrateMode mode, int shards, const CampaignConfig& config) {
  CampaignEngine engine(small_config(), config, shards, standard_exhibitors(), mode);
  CampaignResult result = engine.run();
  return export_campaign_json(engine.primary(), result);
}

TEST(WorldTest, SharedWorldExportMatchesIndependentReplicas) {
  CampaignConfig config = fast_campaign();
  std::string replica1 = run_with_mode(SubstrateMode::kReplicaPerShard, 1, config);
  ASSERT_FALSE(replica1.empty());
  EXPECT_EQ(replica1, run_with_mode(SubstrateMode::kSharedWorld, 1, config));
  EXPECT_EQ(replica1, run_with_mode(SubstrateMode::kReplicaPerShard, 4, config));
  EXPECT_EQ(replica1, run_with_mode(SubstrateMode::kSharedWorld, 4, config));
}

TEST(WorldTest, SharedWorldExportMatchesReplicasUnderFaultInjection) {
  CampaignConfig config = fast_campaign();
  auto profile =
      sim::FaultProfile::parse("loss=0.05,jitter=10ms,hp-outage=US@3h+4h,retries=2,rto=30s");
  ASSERT_TRUE(profile.ok()) << profile.error().message;
  config.faults = profile.value();
  std::string replica = run_with_mode(SubstrateMode::kReplicaPerShard, 4, config);
  ASSERT_FALSE(replica.empty());
  EXPECT_EQ(replica, run_with_mode(SubstrateMode::kSharedWorld, 1, config));
  EXPECT_EQ(replica, run_with_mode(SubstrateMode::kSharedWorld, 4, config));
}

TEST(WorldTest, EngineReusesOnePrebuiltWorld) {
  auto world = World::build(small_config(), standard_exhibitors());
  CampaignConfig config = fast_campaign();
  CampaignEngine a(world, config, 2, standard_exhibitors());
  CampaignEngine b(world, config, 3, standard_exhibitors());
  EXPECT_EQ(a.world().get(), world.get());
  EXPECT_EQ(b.world().get(), world.get());
  CampaignResult result_a = a.run();
  CampaignResult result_b = b.run();
  EXPECT_EQ(export_campaign_json(a.primary(), result_a),
            export_campaign_json(b.primary(), result_b));
}

TEST(WorldTest, InstancesShareStructureButNotLiveState) {
  auto world = World::build(small_config());
  auto a = Testbed::instantiate(world);
  auto b = Testbed::instantiate(world);
  ASSERT_TRUE(a->frozen());
  ASSERT_TRUE(b->frozen());

  // Structural reads alias the one shared World...
  EXPECT_EQ(&a->topology(), &b->topology());
  EXPECT_EQ(&a->topology(), &world->topology());
  EXPECT_EQ(&a->blocklist(), &world->blocklist());
  EXPECT_EQ(&a->signatures(), &b->signatures());
  EXPECT_EQ(a->net().layout().get(), &world->layout());
  EXPECT_EQ(b->net().layout().get(), &world->layout());

  // ...while live servers are private instances.
  ASSERT_NE(a->resolver("Google"), nullptr);
  EXPECT_NE(a->resolver("Google"), b->resolver("Google"));
  EXPECT_NE(a->web_server(1), b->web_server(1));

  // Traffic into instance A lands only in A's logbook: the VP node exists in
  // the shared layout, but handlers, stacks and logbooks are per instance.
  const topo::VantagePoint& vp = a->topology().vantage_points().front();
  const topo::Honeypot& pot = a->topology().honeypots().front();
  net::DnsMessage query = net::DnsMessage::query(
      1, experiment_zone().child("www").child("probe-aliasing"), net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(a->net(), vp.node, vp.addr, pot.addr, 4000, 53, BytesView(wire));
  a->loop().run_until(kMinute);
  b->loop().run_until(kMinute);
  EXPECT_EQ(a->logbook().size(), 1u);
  EXPECT_EQ(b->logbook().size(), 0u);

  // A resolver exercised on A keeps its counters/cache out of B's instance.
  EXPECT_EQ(b->resolver("Google")->client_queries(), 0u);
}

TEST(WorldTest, FrozenInstanceRejectsStructuralMutation) {
  auto world = World::build(small_config());
  auto bed = Testbed::instantiate(world);
  EXPECT_THROW(bed->net().add_router("rogue", net::Ipv4Addr(9, 9, 9, 9)),
               std::logic_error);
  EXPECT_THROW(bed->net().set_default_latency(5 * kMillisecond), std::logic_error);
  EXPECT_THROW(bed->note_blocklisted(net::Ipv4Addr(9, 9, 9, 10)), std::logic_error);
}

TEST(WorldTest, FrozenReplayIsVerifiedByName) {
  // Without a decorator the dynamic tail after instantiation holds exactly
  // the engine's "control-server"; creating anything else must throw, and
  // the matching replay must hand back a node with the authored address.
  auto world = World::build(small_config());
  {
    auto bed = Testbed::instantiate(world);
    EXPECT_THROW(bed->add_host_in_as(24940, "not-the-plan"), std::logic_error);
  }
  auto bed = Testbed::instantiate(world);
  sim::NodeId node = bed->add_host_in_as(
      bed->topology().honeypots().front().asn, "control-server");
  EXPECT_EQ(bed->net().name(node), "control-server");
  EXPECT_NE(bed->net().address(node).value(), 0u);
  // The tail is consumed; a second creation has nothing left to replay.
  EXPECT_THROW(bed->add_host_in_as(24940, "control-server"), std::logic_error);
}

}  // namespace
}  // namespace shadowprobe::core
