// Post-barrier pipeline parallelism: the determinism contract says the
// classified requests, every analysis table, and the exported JSON are
// byte-identical for any analysis-worker count.
#include <gtest/gtest.h>

#include <memory>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/json_export.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

TestbedConfig small_config() {
  TestbedConfig config;
  config.topology.seed = 71;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

/// One campaign, run once; every test case re-analyzes its result.
class AnalysisParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bed_ = Testbed::create(small_config()).release();
    shadow::ShadowConfig shadow_config;
    shadow_config.fleet_size = 2;
    deployment_ = new shadow::ShadowDeployment(
        shadow::deploy_standard_exhibitors(*bed_, shadow_config));
    Campaign campaign(*bed_, fast_campaign());
    campaign.run();
    result_ = new CampaignResult(campaign.result());
  }

  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
    delete deployment_;
    deployment_ = nullptr;
    delete bed_;
    bed_ = nullptr;
  }

  static Testbed* bed_;
  static shadow::ShadowDeployment* deployment_;
  static CampaignResult* result_;
};

Testbed* AnalysisParallelTest::bed_ = nullptr;
shadow::ShadowDeployment* AnalysisParallelTest::deployment_ = nullptr;
CampaignResult* AnalysisParallelTest::result_ = nullptr;

TEST_F(AnalysisParallelTest, CampaignProducesWork) {
  // Guard against the identity tests passing vacuously.
  ASSERT_NE(result_, nullptr);
  EXPECT_GT(result_->hits.size(), 0u);
  EXPECT_GT(result_->unsolicited.size(), 0u);
}

TEST_F(AnalysisParallelTest, ExportedJsonIsByteIdenticalForAnyWorkerCount) {
  std::string serial = export_campaign_json(*bed_, *result_, 1);
  ASSERT_FALSE(serial.empty());
  for (int workers : {2, 4}) {
    EXPECT_EQ(serial, export_campaign_json(*bed_, *result_, workers))
        << "workers=" << workers;
  }
}

TEST_F(AnalysisParallelTest, ParallelCorrelateMatchesSerial) {
  CampaignResult serial = *result_;
  serial.correlate(1);
  for (int workers : {2, 4}) {
    CampaignResult parallel = *result_;
    parallel.correlate(workers);
    ASSERT_EQ(parallel.unsolicited.size(), serial.unsolicited.size());
    for (std::size_t i = 0; i < serial.unsolicited.size(); ++i) {
      EXPECT_EQ(parallel.unsolicited[i].seq, serial.unsolicited[i].seq);
      EXPECT_EQ(parallel.unsolicited[i].interval, serial.unsolicited[i].interval);
      EXPECT_EQ(parallel.unsolicited[i].hit.time, serial.unsolicited[i].hit.time);
    }
    EXPECT_EQ(parallel.findings.size(), serial.findings.size());
  }
}

TEST_F(AnalysisParallelTest, EveryTableMatchesSerialUnderParallelScan) {
  const auto& ledger = result_->ledger;
  const auto& unsolicited = result_->unsolicited;
  auto ratios1 = path_ratios(ledger, unsolicited, 1);
  auto resolver_h = top_shadowed_resolvers(ratios1, 5);
  auto dns1 = interval_cdf_by_resolver(ledger, unsolicited, resolver_h, 1);
  auto web1 = interval_cdf_by_protocol(unsolicited, 1);
  auto combos1 = protocol_combos(ledger, unsolicited, {}, 1);
  auto retention1 = retention_stats(ledger, unsolicited, resolver_h, "Yandex", 1);
  auto incentives1 = incentive_stats(unsolicited, bed_->signatures(), bed_->blocklist(), 1);

  for (int workers : {2, 4}) {
    auto ratiosN = path_ratios(ledger, unsolicited, workers);
    for (const auto& [key, by_country] : ratios1.cells) {
      auto it = ratiosN.cells.find(key);
      ASSERT_NE(it, ratiosN.cells.end());
      for (const auto& [country, cell] : by_country) {
        EXPECT_EQ(it->second.at(country).paths, cell.paths);
        EXPECT_EQ(it->second.at(country).problematic, cell.problematic);
      }
    }

    auto dnsN = interval_cdf_by_resolver(ledger, unsolicited, resolver_h, workers);
    ASSERT_EQ(dnsN.size(), dns1.size());
    for (auto& [name, cdf] : dns1) {
      ASSERT_TRUE(dnsN.count(name));
      EXPECT_EQ(dnsN.at(name).count(), cdf.count());
      EXPECT_DOUBLE_EQ(dnsN.at(name).quantile(0.5), cdf.quantile(0.5));
    }
    auto webN = interval_cdf_by_protocol(unsolicited, workers);
    ASSERT_EQ(webN.size(), web1.size());
    for (auto& [protocol, cdf] : web1) {
      EXPECT_EQ(webN.at(protocol).count(), cdf.count());
      EXPECT_DOUBLE_EQ(webN.at(protocol).quantile(0.5), cdf.quantile(0.5));
    }

    auto combosN = protocol_combos(ledger, unsolicited, {}, workers);
    EXPECT_EQ(combosN.decoys, combos1.decoys);
    EXPECT_EQ(combosN.shares, combos1.shares);

    auto retentionN = retention_stats(ledger, unsolicited, resolver_h, "Yandex", workers);
    EXPECT_DOUBLE_EQ(retentionN.over3_after_1h, retention1.over3_after_1h);
    EXPECT_DOUBLE_EQ(retentionN.over10_after_1h, retention1.over10_after_1h);
    EXPECT_DOUBLE_EQ(retentionN.web_after_10d, retention1.web_after_10d);
    EXPECT_EQ(retentionN.considered_decoys, retention1.considered_decoys);

    auto incentivesN =
        incentive_stats(unsolicited, bed_->signatures(), bed_->blocklist(), workers);
    EXPECT_EQ(incentivesN.http_requests, incentives1.http_requests);
    EXPECT_EQ(incentivesN.exploits_found, incentives1.exploits_found);
    EXPECT_EQ(incentivesN.payload_shares, incentives1.payload_shares);
    EXPECT_DOUBLE_EQ(incentivesN.dns_decoy_http_origin_blocklisted,
                     incentives1.dns_decoy_http_origin_blocklisted);
  }
}

TEST_F(AnalysisParallelTest, RetentionCountsOnlyDnsReuseAsLateRequests) {
  // The §5.1 ">3 after 1h" metric measures DNS-data reuse: web probes of
  // the decoy name must not inflate it. Compare against a manual count.
  auto resolver_h =
      top_shadowed_resolvers(path_ratios(result_->ledger, result_->unsolicited), 5);
  auto stats = retention_stats(result_->ledger, result_->unsolicited, resolver_h,
                               resolver_h.empty() ? "Yandex" : resolver_h.front());
  std::map<std::uint32_t, int> late_dns;
  for (const auto& request : result_->unsolicited) {
    const DecoyRecord* record = result_->ledger.by_seq(request.seq);
    if (record == nullptr || record->phase2 ||
        record->id.protocol != DecoyProtocol::kDns) {
      continue;
    }
    if (request.request_protocol == RequestProtocol::kDns && request.interval > kHour) {
      ++late_dns[request.seq];
    }
  }
  std::set<std::string> wanted(resolver_h.begin(), resolver_h.end());
  int total = 0;
  int over3 = 0;
  for (const auto& decoy : result_->ledger.decoys()) {
    if (decoy.phase2 || decoy.id.protocol != DecoyProtocol::kDns) continue;
    const PathRecord& path = result_->ledger.path(decoy.path_id);
    if (!wanted.empty() && wanted.count(path.dest_name) == 0) continue;
    ++total;
    auto it = late_dns.find(decoy.id.seq);
    if (it != late_dns.end() && it->second > 3) ++over3;
  }
  ASSERT_EQ(stats.considered_decoys, total);
  EXPECT_DOUBLE_EQ(stats.over3_after_1h,
                   total > 0 ? static_cast<double>(over3) / total : 0.0);
}

}  // namespace
}  // namespace shadowprobe::core
