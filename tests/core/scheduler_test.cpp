// The VP scheduler contract: the stealing scheduler may move work between
// shards (and, via deals, between worker processes) but must never move the
// *output* — exported JSON stays byte-identical to the static schedule for
// every layout, with and without a fault profile. A skewed initial deal
// must actually trigger steals and leave the event load measurably more
// balanced than the same deal executed statically.
//
// Also the event_imbalance() regression: a campaign whose shards processed
// zero events (e.g. a zero-duration config) must report 1.0, not NaN.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/campaign_engine.h"
#include "core/campaign_result.h"
#include "core/json_export.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

#ifndef SHADOWPROBE_WORKER_BIN
#define SHADOWPROBE_WORKER_BIN ""
#endif

bool worker_bin_available() {
  return SHADOWPROBE_WORKER_BIN[0] != '\0' &&
         ::access(SHADOWPROBE_WORKER_BIN, X_OK) == 0;
}

TestbedConfig small_config(std::uint64_t seed = 61) {
  TestbedConfig config;
  config.topology.seed = seed;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

CampaignConfig faulty_campaign() {
  CampaignConfig config = fast_campaign();
  auto profile = sim::FaultProfile::parse("loss=0.05,jitter=10ms,retries=2,rto=30s");
  EXPECT_TRUE(profile.ok());
  config.faults = profile.value();
  return config;
}

/// The decorator the worker binary applies, so multi-process runs agree.
CampaignEngine::Decorator cli_exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    shadow::ShadowConfig shadow_config;
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow_config));
  };
}

/// One campaign run: the merged result plus its JSON export (taken while
/// the engine — and therefore the export's context testbed — is alive).
struct RunOutcome {
  CampaignResult result;
  std::string json;
};

RunOutcome run_campaign(int shards, int procs, SchedulerMode scheduler,
                        const CampaignConfig& campaign,
                        std::vector<std::uint32_t> deal = {}) {
  EngineExec exec;
  exec.shard_procs = procs;
  exec.worker_exe = procs >= 1 ? SHADOWPROBE_WORKER_BIN : "";
  exec.scheduler = scheduler;
  exec.initial_deal = std::move(deal);
  CampaignEngine engine(small_config(), campaign, shards, cli_exhibitors(), exec);
  RunOutcome out;
  out.result = engine.run();
  out.json = export_campaign_json(engine.primary(), out.result);
  return out;
}

std::string run_and_export(int shards, int procs, SchedulerMode scheduler,
                           const CampaignConfig& campaign,
                           std::vector<std::uint32_t> deal = {}) {
  return run_campaign(shards, procs, scheduler, campaign, std::move(deal)).json;
}

TEST(SchedulerStats, ZeroEventCampaignImbalanceIsOne) {
  ShardExecutionStats stats;
  stats.per_shard.resize(4);  // four shards, zero events each
  EXPECT_TRUE(std::isfinite(stats.event_imbalance()));
  EXPECT_DOUBLE_EQ(stats.event_imbalance(), 1.0);
}

TEST(SchedulerDeterminism, StealExportMatchesStaticAcrossShardCounts) {
  CampaignConfig campaign = fast_campaign();
  std::string reference = run_and_export(1, 0, SchedulerMode::kStatic, campaign);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, run_and_export(1, 0, SchedulerMode::kSteal, campaign));
  EXPECT_EQ(reference, run_and_export(4, 0, SchedulerMode::kSteal, campaign));
  EXPECT_EQ(reference, run_and_export(4, 0, SchedulerMode::kStatic, campaign));
}

TEST(SchedulerDeterminism, StealExportMatchesStaticUnderFaultProfile) {
  CampaignConfig campaign = faulty_campaign();
  ASSERT_TRUE(campaign.faults.enabled());
  std::string reference = run_and_export(4, 0, SchedulerMode::kStatic, campaign);
  ASSERT_FALSE(reference.empty());
  // Stealing moves quarantine/streak state between shards via barrier
  // carries; the export must not notice.
  EXPECT_EQ(reference, run_and_export(4, 0, SchedulerMode::kSteal, campaign));
  if (worker_bin_available()) {
    // Cross-process: balanced deals + carries ride the wire protocol.
    EXPECT_EQ(reference, run_and_export(4, 2, SchedulerMode::kSteal, campaign));
    EXPECT_EQ(reference, run_and_export(4, 2, SchedulerMode::kStatic, campaign));
  }
}

TEST(SchedulerDeterminism, StealExportMatchesStaticAcrossProcesses) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  std::string reference = run_and_export(4, 0, SchedulerMode::kStatic, campaign);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, run_and_export(4, 1, SchedulerMode::kSteal, campaign));
  EXPECT_EQ(reference, run_and_export(4, 2, SchedulerMode::kSteal, campaign));
}

TEST(SchedulerStats, SchedulerAndStealsRecorded) {
  CampaignConfig campaign = fast_campaign();
  ShardExecutionStats stat =
      run_campaign(2, 0, SchedulerMode::kStatic, campaign).result.shard_stats;
  EXPECT_EQ(stat.scheduler, SchedulerMode::kStatic);
  EXPECT_EQ(stat.steals_attempted, 0u);
  EXPECT_EQ(stat.steals_completed, 0u);
  ShardExecutionStats steal =
      run_campaign(2, 0, SchedulerMode::kSteal, campaign).result.shard_stats;
  EXPECT_EQ(steal.scheduler, SchedulerMode::kSteal);
  EXPECT_GE(steal.steals_attempted, steal.steals_completed);
}

TEST(SchedulerBalance, SkewedDealForcesStealsAndRebalances) {
  // Deal *every* VP to shard 0: the static schedule leaves shards 1..3 with
  // nothing but replica infrastructure traffic, the stealing schedule must
  // notice and spread the load.
  TestbedConfig bed = small_config();
  const std::size_t vp_count =
      static_cast<std::size_t>(bed.topology.global_vps + bed.topology.cn_vps);
  std::vector<std::uint32_t> skew(vp_count, 0);
  CampaignConfig campaign = fast_campaign();

  RunOutcome stat = run_campaign(4, 0, SchedulerMode::kStatic, campaign, skew);
  RunOutcome steal = run_campaign(4, 0, SchedulerMode::kSteal, campaign, skew);

  // Moving every VP to one shard still must not move the output.
  EXPECT_EQ(stat.json, run_and_export(4, 0, SchedulerMode::kStatic, campaign));
  EXPECT_EQ(stat.json, steal.json);

  EXPECT_EQ(stat.result.shard_stats.steals_completed, 0u);
  EXPECT_GT(steal.result.shard_stats.steals_completed, 0u);
  EXPECT_LT(steal.result.shard_stats.event_imbalance(),
            stat.result.shard_stats.event_imbalance());
}

}  // namespace
}  // namespace shadowprobe::core
