// CLI option parsing: strict validation of every front-end knob.
#include "core/cli.h"

#include <gtest/gtest.h>

namespace shadowprobe::core {
namespace {

Result<CliOptions> parse(std::initializer_list<const char*> args,
                         const CliEnvironment& env = {}) {
  std::vector<std::string> vec;
  for (const char* arg : args) vec.emplace_back(arg);
  return parse_cli_options(vec, env);
}

TEST(CliTest, DefaultsMatchTheHistoricalBehaviour) {
  auto parsed = parse({});
  ASSERT_TRUE(parsed.ok());
  const CliOptions& options = parsed.value();
  EXPECT_DOUBLE_EQ(options.scale, 1.0);
  EXPECT_EQ(options.seed, 20240301u);
  EXPECT_EQ(options.days, 25);
  EXPECT_EQ(options.shards, 0);  // serial Campaign
  EXPECT_EQ(options.analysis_workers, 1);
  EXPECT_TRUE(options.screening);
  EXPECT_FALSE(options.ech);
  EXPECT_EQ(options.report, "all");
  EXPECT_FALSE(options.faults.enabled());
}

TEST(CliTest, ParsesTheFullOptionSet) {
  auto parsed = parse({"--scale", "0.5", "--seed", "7", "--days", "10", "--shards", "4",
                       "--analysis-workers", "2", "--fault-profile", "loss=0.1",
                       "--transport", "odoh", "--ech", "--no-screening", "--report",
                       "fig3", "--json", "/tmp/out.json", "--trace", "5"});
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const CliOptions& options = parsed.value();
  EXPECT_DOUBLE_EQ(options.scale, 0.5);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.days, 10);
  EXPECT_EQ(options.shards, 4);
  EXPECT_EQ(options.analysis_workers, 2);
  EXPECT_DOUBLE_EQ(options.faults.link_loss, 0.1);
  EXPECT_EQ(options.transport, DnsDecoyTransport::kOblivious);
  EXPECT_TRUE(options.ech);
  EXPECT_FALSE(options.screening);
  EXPECT_EQ(options.report, "fig3");
  EXPECT_EQ(options.json_path, "/tmp/out.json");
  EXPECT_EQ(options.trace, 5);
}

TEST(CliTest, RejectsNonPositiveShards) {
  EXPECT_FALSE(parse({"--shards", "0"}).ok());
  EXPECT_FALSE(parse({"--shards", "-2"}).ok());
  auto bad = parse({"--shards", "abc"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("--shards"), std::string::npos);
}

TEST(CliTest, RejectsPartiallyNumericValues) {
  // atoi would have silently read "4x" as 4; the strict parser must not.
  EXPECT_FALSE(parse({"--shards", "4x"}).ok());
  EXPECT_FALSE(parse({"--days", "10.5"}).ok());
  EXPECT_FALSE(parse({"--seed", "12abc"}).ok());
}

TEST(CliTest, RejectsNonPositiveAnalysisWorkers) {
  EXPECT_FALSE(parse({"--analysis-workers", "0"}).ok());
  EXPECT_FALSE(parse({"--analysis-workers", "-1"}).ok());
  EXPECT_FALSE(parse({"--analysis-workers", "many"}).ok());
  EXPECT_TRUE(parse({"--analysis-workers", "8"}).ok());
}

TEST(CliTest, RejectsMalformedFaultProfiles) {
  auto bad = parse({"--fault-profile", "loss=2.0"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("--fault-profile"), std::string::npos);
  EXPECT_FALSE(parse({"--fault-profile", "bogus-preset"}).ok());
  EXPECT_FALSE(parse({"--fault-profile", "hp-outage=US"}).ok());
}

TEST(CliTest, RejectsBadScaleSeedTransportReportAndUnknowns) {
  EXPECT_FALSE(parse({"--scale", "0"}).ok());
  EXPECT_FALSE(parse({"--scale", "-1"}).ok());
  EXPECT_FALSE(parse({"--seed", "-5"}).ok());
  EXPECT_FALSE(parse({"--transport", "doq"}).ok());
  EXPECT_FALSE(parse({"--report", "fig9"}).ok());
  EXPECT_FALSE(parse({"--frobnicate"}).ok());
  EXPECT_FALSE(parse({"--shards"}).ok());  // missing value
}

TEST(CliTest, EnvironmentProvidesFallbacks) {
  CliEnvironment env;
  env.shards = "3";
  env.analysis_workers = "2";
  env.fault_profile = "lossy";
  auto parsed = parse({}, env);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().shards, 3);
  EXPECT_EQ(parsed.value().analysis_workers, 2);
  EXPECT_TRUE(parsed.value().faults.enabled());
}

TEST(CliTest, ExplicitFlagsOverrideTheEnvironment) {
  CliEnvironment env;
  env.shards = "3";
  env.fault_profile = "lossy";
  auto parsed = parse({"--shards", "8", "--fault-profile", "none"}, env);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().shards, 8);
  EXPECT_FALSE(parsed.value().faults.enabled());
}

TEST(CliTest, MalformedEnvironmentValuesAreRejectedWithTheirSource) {
  CliEnvironment env;
  env.shards = "zero";
  auto bad = parse({}, env);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("SHADOWPROBE_SHARDS"), std::string::npos);

  CliEnvironment env2;
  env2.fault_profile = "loss=nan";
  auto bad2 = parse({}, env2);
  ASSERT_FALSE(bad2.ok());
  EXPECT_NE(bad2.error().message.find("SHADOWPROBE_FAULT_PROFILE"), std::string::npos);
}

TEST(CliTest, SchedulerFlagAndEnvironment) {
  EXPECT_EQ(parse({}).value().scheduler, SchedulerMode::kSteal);  // the default
  EXPECT_EQ(parse({"--scheduler", "static"}).value().scheduler, SchedulerMode::kStatic);
  EXPECT_EQ(parse({"--scheduler", "steal"}).value().scheduler, SchedulerMode::kSteal);
  auto bad = parse({"--scheduler", "greedy"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("--scheduler"), std::string::npos);

  CliEnvironment env;
  env.scheduler = "static";
  EXPECT_EQ(parse({}, env).value().scheduler, SchedulerMode::kStatic);
  EXPECT_EQ(parse({"--scheduler", "steal"}, env).value().scheduler,
            SchedulerMode::kSteal);  // flag wins
  env.scheduler = "bogus";
  auto bad_env = parse({}, env);
  ASSERT_FALSE(bad_env.ok());
  EXPECT_NE(bad_env.error().message.find("SHADOWPROBE_SCHEDULER"), std::string::npos);
}

TEST(CliTest, ShardProcsClampedToShardCount) {
  // More workers than shards would idle the surplus; both spellings clamp.
  auto flag = parse({"--shards", "2", "--shard-procs", "8"});
  ASSERT_TRUE(flag.ok());
  EXPECT_EQ(flag.value().shard_procs, 2);

  CliEnvironment env;
  env.shards = "3";
  env.shard_procs = "5";
  auto fromenv = parse({}, env);
  ASSERT_TRUE(fromenv.ok());
  EXPECT_EQ(fromenv.value().shard_procs, 3);

  // Workers without an explicit shard count imply a single-shard engine —
  // and therefore a single worker.
  auto implied = parse({"--shard-procs", "4"});
  ASSERT_TRUE(implied.ok());
  EXPECT_EQ(implied.value().shards, 1);
  EXPECT_EQ(implied.value().shard_procs, 1);

  // In-range counts are untouched.
  auto exact = parse({"--shards", "4", "--shard-procs", "4"});
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().shard_procs, 4);
}

TEST(CliTest, FaultProfileImpliesTheEngine) {
  // The serial Campaign has no fault layer; an unsharded faulty invocation
  // silently runs a single-shard engine instead.
  auto parsed = parse({"--fault-profile", "loss=0.05"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().shards, 1);
  // An explicit shard count is kept.
  auto sharded = parse({"--fault-profile", "loss=0.05", "--shards", "4"});
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.value().shards, 4);
}

}  // namespace
}  // namespace shadowprobe::core
