// VpAgent behaviour on a real testbed: decoy emission over each protocol
// and transport, screening probes, ICMP hop correlation, TTL mangling.
#include "core/vp_agent.h"

#include <gtest/gtest.h>

#include "core/ledger.h"
#include "core/testbed.h"
#include "sim/udp_util.h"

namespace shadowprobe::core {
namespace {

class VpAgentTest : public ::testing::Test {
 protected:
  VpAgentTest() {
    TestbedConfig config;
    config.topology.seed = 41;
    config.topology.global_vps = 16;
    config.topology.cn_vps = 8;
    config.topology.web_sites = 4;
    bed = Testbed::create(config);
    for (const auto& candidate : bed->topology().vantage_points()) {
      if (!candidate.resets_ttl && !candidate.residential) {
        vp = &candidate;
        break;
      }
    }
    VpAgent::Hooks hooks;
    hooks.on_dest_response = [this](std::uint32_t seq, SimTime) { responses.insert(seq); };
    hooks.on_hop = [this](std::uint32_t seq, net::Ipv4Addr hop, SimTime) {
      hops[seq] = hop;
    };
    hooks.on_interception = [this](const topo::VantagePoint&, net::Ipv4Addr) {
      ++interceptions;
    };
    agent = std::make_unique<VpAgent>(*vp, bed->fork_rng("agent"), hooks);
    agent->bind(bed->net());
  }

  DecoyRecord& make_decoy(net::Ipv4Addr dst, DecoyProtocol protocol, std::uint8_t ttl,
                          DestKind kind = DestKind::kPublicResolver) {
    PathRecord path;
    path.vp = vp;
    path.dest_kind = kind;
    path.dest_addr = dst;
    path.protocol = protocol;
    std::uint32_t pid = ledger.add_path(path);
    return ledger.create(pid, bed->loop().now(), vp->addr, dst, protocol, ttl, ttl != 64);
  }

  std::unique_ptr<Testbed> bed;
  const topo::VantagePoint* vp = nullptr;
  std::unique_ptr<VpAgent> agent;
  DecoyLedger ledger;
  std::set<std::uint32_t> responses;
  std::map<std::uint32_t, net::Ipv4Addr> hops;
  int interceptions = 0;
};

TEST_F(VpAgentTest, DnsDecoyResolvesAndHitsHoneypot) {
  DecoyRecord decoy = make_decoy(net::Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64);
  agent->send_dns_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(responses.count(decoy.id.seq));
  ASSERT_EQ(bed->logbook().size(), 1u);
  EXPECT_EQ(bed->logbook().hits()[0].decoy->seq, decoy.id.seq);
}

TEST_F(VpAgentTest, HttpDecoyCompletesHandshakeAndGetsAnswer) {
  net::Ipv4Addr site = bed->topology().web_sites().front().addr;
  DecoyRecord decoy = make_decoy(site, DecoyProtocol::kHttp, 64, DestKind::kWebSite);
  agent->send_http_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(responses.count(decoy.id.seq));
  // HTTP decoys never aim at honeypots; only the web site saw it.
  EXPECT_EQ(bed->logbook().size(), 0u);
  EXPECT_GT(bed->web_server(bed->topology().web_sites().front().rank)->http_requests(), 0u);
}

TEST_F(VpAgentTest, TlsDecoyDeliversSniToSite) {
  const auto& site = bed->topology().web_sites().front();
  DecoyRecord decoy = make_decoy(site.addr, DecoyProtocol::kTls, 64, DestKind::kWebSite);
  agent->send_tls_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(responses.count(decoy.id.seq));
  EXPECT_GT(bed->web_server(site.rank)->tls_handshakes(), 0u);
}

TEST_F(VpAgentTest, LowTtlDecoyDrawsIcmpFromExactHop) {
  DecoyRecord decoy = make_decoy(net::Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 1);
  agent->send_dns_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_FALSE(responses.count(decoy.id.seq));
  ASSERT_TRUE(hops.count(decoy.id.seq));
  // Hop 1 is the VP's AS access router.
  const topo::AsRecord* as = bed->topology().as_by_number(vp->asn);
  EXPECT_EQ(hops[decoy.id.seq], bed->net().address(as->access));
}

TEST_F(VpAgentTest, TtlSweepWalksThePath) {
  std::map<int, net::Ipv4Addr> by_ttl;
  for (std::uint8_t ttl = 1; ttl <= 12; ++ttl) {
    DecoyRecord decoy = make_decoy(net::Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, ttl);
    agent->send_dns_decoy(decoy);
    bed->loop().run_until(bed->loop().now() + kSecond);
    if (hops.count(decoy.id.seq)) by_ttl[ttl] = hops[decoy.id.seq];
  }
  bed->loop().run_until(bed->loop().now() + kMinute);
  // Several distinct hops revealed, strictly before the destination answers.
  std::set<net::Ipv4Addr> distinct;
  for (auto& [ttl, addr] : by_ttl) distinct.insert(addr);
  EXPECT_GE(distinct.size(), 4u);
  // Large-TTL variants reached the resolver instead (no ICMP).
  EXPECT_LT(by_ttl.rbegin()->first, 12);
}

TEST_F(VpAgentTest, RawDecoyDrawsRstAsDestinationSignal) {
  net::Ipv4Addr site = bed->topology().web_sites().front().addr;
  DecoyRecord decoy = make_decoy(site, DecoyProtocol::kHttp, 64, DestKind::kWebSite);
  agent->send_raw_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(responses.count(decoy.id.seq));  // the RST
}

TEST_F(VpAgentTest, PairProbeStaysSilentWithoutInterception) {
  agent->send_pair_probe(net::Ipv4Addr(8, 8, 8, 11));  // 8.8.8.8 + 3
  bed->loop().run_until(kMinute);
  EXPECT_EQ(interceptions, 0);
}

TEST_F(VpAgentTest, EncryptedTransportStillResolves) {
  agent->set_dns_transport(DnsDecoyTransport::kEncrypted);
  DecoyRecord decoy = make_decoy(net::Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64);
  agent->send_dns_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(responses.count(decoy.id.seq));
  EXPECT_EQ(bed->logbook().size(), 1u);  // honeypot recursion still happens
}

TEST_F(VpAgentTest, ObliviousTransportStillResolves) {
  agent->set_dns_transport(DnsDecoyTransport::kOblivious, bed->oblivious_proxy_addr());
  DecoyRecord decoy = make_decoy(net::Ipv4Addr(8, 8, 8, 8), DecoyProtocol::kDns, 64);
  agent->send_dns_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(responses.count(decoy.id.seq));
}

TEST_F(VpAgentTest, EchDecoyHidesDomainFromHoneypotOnlyLogically) {
  // With ECH the honeypot (terminating party) still decodes the identifier.
  agent->set_tls_ech(true);
  net::Ipv4Addr pot = bed->topology().honeypots().front().addr;
  DecoyRecord decoy = make_decoy(pot, DecoyProtocol::kTls, 64, DestKind::kWebSite);
  agent->send_tls_decoy(decoy);
  bed->loop().run_until(kMinute);
  ASSERT_EQ(bed->logbook().size(), 1u);
  ASSERT_TRUE(bed->logbook().hits()[0].decoy.has_value());
  EXPECT_EQ(bed->logbook().hits()[0].decoy->seq, decoy.id.seq);
}

TEST_F(VpAgentTest, TtlManglingProviderRewritesEverything) {
  // A VP whose provider rewrites TTLs: same node, mangling flag forced
  // (the catalog draws such providers only occasionally at tiny scales).
  topo::VantagePoint mangler = bed->topology().vantage_points()[1];
  mangler.resets_ttl = true;
  VpAgent::Hooks hooks;
  std::set<std::uint32_t> mangler_hops;
  std::set<std::uint32_t> mangler_responses;
  hooks.on_hop = [&](std::uint32_t seq, net::Ipv4Addr, SimTime) {
    mangler_hops.insert(seq);
  };
  hooks.on_dest_response = [&](std::uint32_t seq, SimTime) {
    mangler_responses.insert(seq);
  };
  VpAgent bad(mangler, bed->fork_rng("bad"), hooks);
  bad.bind(bed->net());
  PathRecord path;
  path.vp = &mangler;
  path.dest_addr = net::Ipv4Addr(8, 8, 8, 8);
  std::uint32_t pid = ledger.add_path(path);
  // TTL=1 should die at hop 1 — but the provider rewrites it to 64, so the
  // decoy sails through to the resolver instead of drawing ICMP.
  DecoyRecord decoy = ledger.create(pid, 0, mangler.addr, path.dest_addr,
                                    DecoyProtocol::kDns, 1, true);
  bad.send_dns_decoy(decoy);
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(mangler_hops.empty());
  EXPECT_TRUE(mangler_responses.count(decoy.id.seq));
}

TEST(ControlServerTest, RecordsArrivalTtls) {
  ControlServer server;
  sim::EventLoop loop;
  sim::Network net(loop);
  sim::NodeId ctrl = net.add_host("ctrl", net::Ipv4Addr(9, 0, 0, 1), &server);
  sim::NodeId client = net.add_host("client", net::Ipv4Addr(9, 0, 0, 2), nullptr);
  sim::NodeId router = net.add_router("r", net::Ipv4Addr(9, 0, 0, 3));
  net.routes(client).set_default(router);
  net.routes(router).add(net::Prefix(net::Ipv4Addr(9, 0, 0, 1), 32), ctrl);

  ByteWriter w;
  w.raw("canary");
  w.u32(77);
  sim::send_udp(net, client, net::Ipv4Addr(9, 0, 0, 2), net::Ipv4Addr(9, 0, 0, 1), 30002,
                7777, BytesView(w.bytes()), /*ttl=*/40);
  loop.run();
  EXPECT_EQ(server.arrival_ttl(net::Ipv4Addr(9, 0, 0, 2), 77), 39);  // one router hop
  EXPECT_EQ(server.arrival_ttl(net::Ipv4Addr(9, 0, 0, 2), 78), -1);
  EXPECT_EQ(server.arrival_ttl(net::Ipv4Addr(9, 9, 9, 9), 77), -1);
}

}  // namespace
}  // namespace shadowprobe::core
