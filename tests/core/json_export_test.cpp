#include "core/json_export.h"

#include <gtest/gtest.h>

#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("quote\" backslash\\ newline\n tab\t");
  json.key("count").value(42);
  json.key("pi").value(3.25);
  json.key("flag").value(true);
  json.key("nothing").null();
  json.key("list").begin_array().value(1).value(2).value("x").end_array();
  json.key("nested").begin_object().key("inner").value(-7).end_object();
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(json.str(),
            "{\"name\":\"quote\\\" backslash\\\\ newline\\n tab\\t\","
            "\"count\":42,\"pi\":3.25,\"flag\":true,\"nothing\":null,"
            "\"list\":[1,2,\"x\"],\"nested\":{\"inner\":-7}}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("empty_list").begin_array().end_array();
  json.key("empty_obj").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(), "{\"empty_list\":[],\"empty_obj\":{}}");
}

TEST(JsonWriter, ControlCharactersEscapedAsUnicode) {
  JsonWriter json;
  json.begin_object();
  json.key("ctrl").value(std::string_view("\x01", 1));
  json.end_object();
  EXPECT_EQ(json.str(), "{\"ctrl\":\"\\u0001\"}");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter json;
  json.begin_array();
  json.begin_object().key("a").value(1).end_object();
  json.begin_object().key("b").value(2).end_object();
  json.end_array();
  EXPECT_EQ(json.str(), "[{\"a\":1},{\"b\":2}]");
  EXPECT_TRUE(json.complete());
}

TEST(ExportCampaignJson, ProducesParseableStructure) {
  TestbedConfig config;
  config.topology.seed = 81;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  auto bed = Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  shadow_config.fleet_size = 2;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  CampaignConfig campaign_config;
  campaign_config.phase1_window = 2 * kHour;
  campaign_config.phase2_grace = 6 * kHour;
  campaign_config.total_duration = 5 * kDay;
  Campaign campaign(*bed, campaign_config);
  campaign.run();

  std::string json = export_campaign_json(*bed, campaign);
  // Structural sanity: balanced braces/brackets outside strings, and the
  // sections analysts rely on are present.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  for (const char* section :
       {"\"config\":", "\"screening\":", "\"volume\":", "\"resolver_h\":",
        "\"path_ratios\":", "\"observer_locations\":", "\"observer_ases\":",
        "\"interval_cdf_dns\":", "\"retention\":", "\"incentives\":"}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  // Ground-truth headline present in the data.
  EXPECT_NE(json.find("Yandex"), std::string::npos);
}

}  // namespace
}  // namespace shadowprobe::core
