#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/report.h"

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    vp_cn.id = "cn-vp";
    vp_cn.cn_platform = true;
    vp_cn.country = "CN";
    vp_cn.province = "Jiangsu";
    vp_cn.provider = "QiXun";
    vp_cn.asn = 137697;
    vp_cn.addr = Ipv4Addr(60, 0, 0, 1);
    vp_us.id = "us-vp";
    vp_us.country = "US";
    vp_us.provider = "PureVPN";
    vp_us.asn = 21859;
    vp_us.addr = Ipv4Addr(61, 0, 0, 1);
  }

  std::uint32_t add_dns_path(const topo::VantagePoint& vp, const std::string& resolver) {
    PathRecord path;
    path.vp = &vp;
    path.dest_kind = DestKind::kPublicResolver;
    path.dest_name = resolver;
    path.dest_addr = Ipv4Addr(8, 8, 8, 8);
    path.protocol = DecoyProtocol::kDns;
    return ledger.add_path(path);
  }

  DecoyRecord add_decoy(std::uint32_t path_id) {
    const PathRecord& path = ledger.path(path_id);
    return ledger.create(path_id, 0, path.vp->addr, path.dest_addr, path.protocol, 64,
                         false);
  }

  UnsolicitedRequest request_for(const DecoyRecord& decoy, RequestProtocol protocol,
                                 SimDuration interval,
                                 Ipv4Addr origin = Ipv4Addr(50, 0, 0, 1),
                                 std::string http_target = "/admin") {
    UnsolicitedRequest request;
    request.seq = decoy.id.seq;
    request.path_id = decoy.path_id;
    request.decoy_protocol = decoy.id.protocol;
    request.request_protocol = protocol;
    request.interval = interval;
    request.hit.time = decoy.sent + interval;
    request.hit.origin = origin;
    request.hit.protocol = protocol;
    request.hit.http_target = std::move(http_target);
    request.hit.decoy = decoy.id;
    return request;
  }

  topo::VantagePoint vp_cn, vp_us;
  DecoyLedger ledger;
};

TEST_F(AnalysisTest, PlatformSummaryCountsGroups) {
  auto rows = summarize_platform({&vp_cn, &vp_us});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].group, "Global (excl. CN)");
  EXPECT_EQ(rows[0].ips, 1);
  EXPECT_EQ(rows[1].group, "China (CN mainland)");
  EXPECT_EQ(rows[1].ips, 1);
  EXPECT_EQ(rows[1].regions, 1);  // one province
  EXPECT_EQ(rows[2].group, "Total");
  EXPECT_EQ(rows[2].ips, 2);
  EXPECT_EQ(rows[2].providers, 2);
}

TEST_F(AnalysisTest, PathRatiosSplitByCountryAndGroup) {
  std::uint32_t cn_path = add_dns_path(vp_cn, "114DNS");
  std::uint32_t us_path = add_dns_path(vp_us, "114DNS");
  DecoyRecord cn_decoy = add_decoy(cn_path);
  add_decoy(us_path);

  auto ratios = path_ratios(
      ledger, {request_for(cn_decoy, RequestProtocol::kHttp, kHour)});
  // The CN VP's path is problematic, the US VP's is not — the paper's
  // 114DNS asymmetry.
  auto cn_cell = ratios.group(DecoyProtocol::kDns, "114DNS", /*cn_platform=*/true);
  EXPECT_EQ(cn_cell.paths, 1);
  EXPECT_EQ(cn_cell.problematic, 1);
  auto global_cell = ratios.group(DecoyProtocol::kDns, "114DNS", /*cn_platform=*/false);
  EXPECT_EQ(global_cell.paths, 1);
  EXPECT_EQ(global_cell.problematic, 0);
  EXPECT_DOUBLE_EQ(ratios.total(DecoyProtocol::kDns, "114DNS").ratio(), 0.5);
  EXPECT_EQ(ratios.total(DecoyProtocol::kDns, "missing").paths, 0);
}

TEST_F(AnalysisTest, TopShadowedResolversOrderByRatio) {
  std::uint32_t heavy = add_dns_path(vp_us, "Yandex");
  std::uint32_t light = add_dns_path(vp_us, "Google");
  add_dns_path(vp_cn, "Google");  // second Google path, never problematic
  DecoyRecord heavy_decoy = add_decoy(heavy);
  DecoyRecord light_decoy = add_decoy(light);
  add_decoy(light);
  auto ratios = path_ratios(ledger, {
      request_for(heavy_decoy, RequestProtocol::kHttp, kHour),
      request_for(light_decoy, RequestProtocol::kDns, 2 * kHour),
  });
  auto top = top_shadowed_resolvers(ratios, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], "Yandex");
  EXPECT_EQ(top[1], "Google");
}

TEST_F(AnalysisTest, ObserverLocationSharesSumToOne) {
  std::vector<ObserverFinding> findings;
  for (int i = 0; i < 7; ++i) {
    ObserverFinding finding;
    finding.protocol = DecoyProtocol::kDns;
    finding.normalized_hop = 10;
    finding.at_destination = true;
    findings.push_back(finding);
  }
  ObserverFinding wire;
  wire.protocol = DecoyProtocol::kDns;
  wire.normalized_hop = 4;
  wire.at_destination = false;
  findings.push_back(wire);

  auto locations = observer_locations(findings);
  EXPECT_EQ(locations.located_paths[DecoyProtocol::kDns], 8);
  double sum = 0;
  for (int hop = 1; hop <= 10; ++hop) sum += locations.shares[DecoyProtocol::kDns][hop];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(locations.shares[DecoyProtocol::kDns][10], 7.0 / 8.0, 1e-9);
}

TEST_F(AnalysisTest, ObserverAsTableGroupsDistinctIps) {
  intel::GeoDatabase geo;
  geo.add(net::Prefix(Ipv4Addr(100, 1, 0, 0), 16),
          {"CN", "", 4134, "CHINANET-BACKBONE", intel::PrefixType::kIsp});
  geo.add(net::Prefix(Ipv4Addr(100, 2, 0, 0), 16),
          {"US", "", 40444, "Constant Contact", intel::PrefixType::kHosting});
  std::vector<ObserverFinding> findings;
  auto add = [&](DecoyProtocol protocol, Ipv4Addr addr) {
    ObserverFinding finding;
    finding.protocol = protocol;
    finding.at_destination = false;
    finding.normalized_hop = 5;
    finding.observer_addr = addr;
    findings.push_back(finding);
  };
  add(DecoyProtocol::kHttp, Ipv4Addr(100, 1, 0, 1));
  add(DecoyProtocol::kHttp, Ipv4Addr(100, 1, 0, 1));  // duplicate IP: one observer
  add(DecoyProtocol::kHttp, Ipv4Addr(100, 1, 0, 2));
  add(DecoyProtocol::kHttp, Ipv4Addr(100, 2, 0, 1));
  add(DecoyProtocol::kTls, Ipv4Addr(100, 1, 0, 3));

  auto table = observer_ases(findings, geo);
  EXPECT_EQ(table.total_observer_ips, 4);
  ASSERT_FALSE(table.rows[DecoyProtocol::kHttp].empty());
  EXPECT_EQ(table.rows[DecoyProtocol::kHttp][0].asn, 4134u);
  EXPECT_EQ(table.rows[DecoyProtocol::kHttp][0].observer_ips, 2);
  EXPECT_NEAR(table.rows[DecoyProtocol::kHttp][0].share, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(table.observer_countries.get("CN"), 3u);
}

TEST_F(AnalysisTest, ProtocolCombosPickMostTellingOutcome) {
  std::uint32_t path = add_dns_path(vp_us, "Yandex");
  DecoyRecord quiet = add_decoy(path);
  DecoyRecord dns_early = add_decoy(path);
  DecoyRecord web_late = add_decoy(path);
  (void)quiet;
  auto combos = protocol_combos(ledger, {
      request_for(dns_early, RequestProtocol::kDns, kMinute),
      // web_late has both an early DNS and a late HTTPS: the HTTPS wins.
      request_for(web_late, RequestProtocol::kDns, kMinute),
      request_for(web_late, RequestProtocol::kHttps, 3 * kDay),
  });
  EXPECT_EQ(combos.decoys["Yandex"], 3);
  EXPECT_NEAR(combos.shares["Yandex"][DecoyOutcome::kNoUnsolicited], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(combos.shares["Yandex"][DecoyOutcome::kDnsWithinHour], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(combos.shares["Yandex"][DecoyOutcome::kWebAfterDays], 1.0 / 3.0, 1e-9);
}

TEST_F(AnalysisTest, OriginAsesJoinGeoAndBlocklist) {
  intel::GeoDatabase geo;
  geo.add(net::Prefix(Ipv4Addr(8, 8, 0, 0), 16),
          {"US", "", 15169, "Google LLC", intel::PrefixType::kHosting});
  intel::Blocklist blocklist;
  blocklist.add(Ipv4Addr(8, 8, 8, 100));

  std::uint32_t path = add_dns_path(vp_us, "Yandex");
  DecoyRecord decoy = add_decoy(path);
  auto table = origin_ases(
      ledger,
      {
          request_for(decoy, RequestProtocol::kDns, kHour, Ipv4Addr(8, 8, 8, 100)),
          request_for(decoy, RequestProtocol::kDns, 2 * kHour, Ipv4Addr(8, 8, 8, 101)),
      },
      {"Yandex"}, geo, blocklist);
  EXPECT_EQ(table.per_resolver["Yandex"].get("AS15169 Google LLC"), 2u);
  EXPECT_EQ(table.distinct_dns_origins, 2);
  EXPECT_DOUBLE_EQ(table.dns_origin_blocklisted, 0.5);
}

TEST_F(AnalysisTest, RetentionStatsCountLateRequests) {
  std::uint32_t path = add_dns_path(vp_us, "Yandex");
  DecoyRecord busy = add_decoy(path);
  DecoyRecord calm = add_decoy(path);
  std::vector<UnsolicitedRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(request_for(busy, RequestProtocol::kDns, kHour + (i + 1) * kMinute));
  }
  requests.push_back(request_for(busy, RequestProtocol::kHttp, 11 * kDay));
  requests.push_back(request_for(calm, RequestProtocol::kDns, kMinute));  // early only
  auto stats = retention_stats(ledger, requests, {}, "Yandex");
  EXPECT_EQ(stats.considered_decoys, 2);
  EXPECT_DOUBLE_EQ(stats.over3_after_1h, 0.5);   // busy has 6 late requests
  EXPECT_DOUBLE_EQ(stats.over10_after_1h, 0.0);
  EXPECT_DOUBLE_EQ(stats.web_after_10d, 0.5);    // busy's HTTP at day 11
}

TEST_F(AnalysisTest, IncentiveStatsClassifyPayloadsAndReputation) {
  intel::SignatureDb signatures = intel::SignatureDb::standard();
  intel::Blocklist blocklist;
  blocklist.add(Ipv4Addr(70, 0, 0, 1));

  std::uint32_t path = add_dns_path(vp_us, "Yandex");
  DecoyRecord decoy = add_decoy(path);
  std::vector<UnsolicitedRequest> requests = {
      request_for(decoy, RequestProtocol::kHttp, kHour, Ipv4Addr(70, 0, 0, 1), "/admin"),
      request_for(decoy, RequestProtocol::kHttp, kHour, Ipv4Addr(70, 0, 0, 2), "/backup.zip"),
      request_for(decoy, RequestProtocol::kHttp, kHour, Ipv4Addr(70, 0, 0, 2), "/"),
      request_for(decoy, RequestProtocol::kHttps, kHour, Ipv4Addr(70, 0, 0, 1), ""),
  };
  auto stats = incentive_stats(requests, signatures, blocklist);
  EXPECT_EQ(stats.http_requests, 3);
  EXPECT_FALSE(stats.exploits_found);
  EXPECT_NEAR(stats.payload_shares[intel::PayloadClass::kPathEnumeration], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.payload_shares[intel::PayloadClass::kBenignFetch], 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.dns_decoy_http_origin_blocklisted, 0.5);
  EXPECT_DOUBLE_EQ(stats.dns_decoy_https_origin_blocklisted, 1.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer-name", "22"});
  std::string out = table.str();
  EXPECT_NE(out.find("name         value"), std::string::npos);
  EXPECT_NE(out.find("longer-name  22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(0.5), "50.0%");
  EXPECT_EQ(percent(0.123, 2), "12.30%");
  EXPECT_EQ(percent(0.997), "99.7%");
}

}  // namespace
}  // namespace shadowprobe::core

namespace shadowprobe::core {
namespace {

TEST_F(AnalysisTest, ProtocolCombosVpCountryFilter) {
  std::uint32_t cn_path = add_dns_path(vp_cn, "114DNS");
  std::uint32_t us_path = add_dns_path(vp_us, "114DNS");
  DecoyRecord cn_decoy = add_decoy(cn_path);
  add_decoy(us_path);  // the US decoy stays quiet
  auto cn_only = protocol_combos(
      ledger, {request_for(cn_decoy, RequestProtocol::kHttps, 2 * kDay)}, {"CN"});
  EXPECT_EQ(cn_only.decoys["114DNS"], 1);
  EXPECT_DOUBLE_EQ(cn_only.shares["114DNS"][DecoyOutcome::kWebAfterDays], 1.0);
  auto both = protocol_combos(
      ledger, {request_for(cn_decoy, RequestProtocol::kHttps, 2 * kDay)});
  EXPECT_EQ(both.decoys["114DNS"], 2);
  EXPECT_DOUBLE_EQ(both.shares["114DNS"][DecoyOutcome::kWebAfterDays], 0.5);
}

}  // namespace
}  // namespace shadowprobe::core
