// Campaign orchestration units: phase structure, ledger bookkeeping,
// screening toggles, measurement toggles, mitigation plumbing.
#include "core/campaign.h"

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

TestbedConfig small_config(std::uint64_t seed = 61) {
  TestbedConfig config;
  config.topology.seed = seed;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

TEST(CampaignTest, Phase1CoversEveryUsableVpTimesEveryDestination) {
  auto bed = Testbed::create(small_config());
  Campaign campaign(*bed, fast_campaign());
  campaign.run();
  std::size_t vps = campaign.active_vps().size();
  std::size_t dns_targets = bed->topology().dns_target_hosts().size();
  std::size_t sites = bed->topology().web_sites().size();
  // Path table: one DNS path per (VP, DNS target), one HTTP and one TLS
  // path per (VP, site).
  EXPECT_EQ(campaign.ledger().paths().size(), vps * (dns_targets + 2 * sites));
  // Phase I emits exactly one decoy per path (no exhibitors -> no phase II).
  std::size_t phase1 = 0;
  for (const auto& decoy : campaign.ledger().decoys()) {
    if (!decoy.phase2) ++phase1;
  }
  EXPECT_EQ(phase1, campaign.ledger().paths().size());
}

TEST(CampaignTest, DecoysReachDestinationsAndComeBack) {
  auto bed = Testbed::create(small_config());
  Campaign campaign(*bed, fast_campaign());
  campaign.run();
  std::size_t responded = 0;
  std::size_t total = 0;
  for (const auto& decoy : campaign.ledger().decoys()) {
    if (decoy.phase2) continue;
    ++total;
    const PathRecord& path = campaign.ledger().path(decoy.path_id);
    // Root/TLD referrals, resolver answers, HTTP responses, TLS greetings:
    // everything answers something.
    if (path.dest_kind != DestKind::kWebSite || path.protocol != DecoyProtocol::kTls) {
      if (decoy.dest_responded) ++responded;
    } else if (decoy.dest_responded) {
      ++responded;
    }
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(responded) / static_cast<double>(total), 0.97);
}

TEST(CampaignTest, NoExhibitorsMeansNoUnsolicitedBeyondQuirks) {
  TestbedConfig config = small_config();
  config.resolver_requery_probability = 0.0;  // clean resolvers
  auto bed = Testbed::create(config);
  Campaign campaign(*bed, fast_campaign());
  campaign.run();
  EXPECT_EQ(campaign.unsolicited().size(), 0u);
  EXPECT_TRUE(campaign.findings().empty());
}

TEST(CampaignTest, Phase2SweepsOnlyProblematicPaths) {
  auto bed = Testbed::create(small_config());
  shadow::ShadowConfig shadow_config;
  shadow_config.fleet_size = 2;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  CampaignConfig config = fast_campaign();
  config.max_sweep_ttl = 12;
  Campaign campaign(*bed, config);
  campaign.run();
  std::set<std::uint32_t> swept;
  for (const auto& decoy : campaign.ledger().decoys()) {
    if (decoy.phase2) swept.insert(decoy.path_id);
  }
  ASSERT_FALSE(swept.empty());
  EXPECT_LT(swept.size(), campaign.ledger().paths().size());
  // Each swept path received exactly max_sweep_ttl variants.
  std::map<std::uint32_t, int> per_path;
  for (const auto& decoy : campaign.ledger().decoys()) {
    if (decoy.phase2) ++per_path[decoy.path_id];
  }
  for (const auto& [path, count] : per_path) EXPECT_EQ(count, 12);
}

TEST(CampaignTest, MeasurementTogglesPruneProtocols) {
  auto bed = Testbed::create(small_config());
  CampaignConfig config = fast_campaign();
  config.measure_http = false;
  config.measure_tls = false;
  Campaign campaign(*bed, config);
  campaign.run();
  for (const auto& path : campaign.ledger().paths()) {
    EXPECT_EQ(path.protocol, DecoyProtocol::kDns);
  }
}

TEST(CampaignTest, ScreeningOffKeepsEveryCandidate) {
  auto bed = Testbed::create(small_config());
  CampaignConfig config = fast_campaign();
  config.screening = false;
  Campaign campaign(*bed, config);
  campaign.run();
  EXPECT_EQ(campaign.active_vps().size(), bed->topology().vantage_points().size());
}

TEST(CampaignTest, EmissionTimesRespectTheWindow) {
  auto bed = Testbed::create(small_config());
  CampaignConfig config = fast_campaign();
  Campaign campaign(*bed, config);
  campaign.run();
  SimTime screening_end = kHour;  // screening occupies the first hour
  for (const auto& decoy : campaign.ledger().decoys()) {
    if (decoy.phase2) continue;
    EXPECT_GE(decoy.sent, screening_end);
    EXPECT_LE(decoy.sent, screening_end + config.phase1_window);
  }
}

TEST(CampaignTest, MitigationFlagsReachTheAgents) {
  // DoT campaign: on-wire DNS wiretaps see nothing, resolvers still answer.
  auto bed = Testbed::create(small_config());
  shadow::ShadowConfig shadow_config;
  shadow_config.fleet_size = 2;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  CampaignConfig config = fast_campaign();
  config.dns_transport = DnsDecoyTransport::kEncrypted;
  Campaign campaign(*bed, config);
  campaign.run();
  const auto* misc = deployment.find("wire:dns-misc");
  ASSERT_NE(misc, nullptr);
  // No *decoy* name is visible on the wire (screening pair probes stay
  // plaintext by design, so the tap may still harvest those).
  std::set<net::DnsName> decoy_domains;
  for (const auto& decoy : campaign.ledger().decoys()) decoy_domains.insert(decoy.domain);
  for (std::size_t i = 0; i < misc->exhibitor->store().size(); ++i) {
    EXPECT_EQ(decoy_domains.count(misc->exhibitor->store().at(i).domain), 0u);
  }
  // Destination shadowing persists.
  auto ratios = path_ratios(campaign.ledger(), campaign.unsolicited());
  EXPECT_GT(ratios.total(DecoyProtocol::kDns, "Yandex").ratio(), 0.8);
}

}  // namespace
}  // namespace shadowprobe::core

namespace shadowprobe::core {
namespace {

TEST(CampaignTest, MultipleRoundsEmitFreshDecoysPerPath) {
  auto bed = Testbed::create(small_config());
  CampaignConfig config = fast_campaign();
  config.phase1_rounds = 3;
  config.phase2_grace = config.phase1_window * 3 + 2 * kHour;
  Campaign campaign(*bed, config);
  campaign.run();
  std::map<std::uint32_t, int> per_path;
  std::set<net::DnsName> domains;
  for (const auto& decoy : campaign.ledger().decoys()) {
    if (decoy.phase2) continue;
    ++per_path[decoy.path_id];
    EXPECT_TRUE(domains.insert(decoy.domain).second) << "duplicate decoy domain";
  }
  for (const auto& [path, count] : per_path) EXPECT_EQ(count, 3);
}

TEST(CampaignTest, RoundsDoNotInflateUnsolicitedOnCleanPaths) {
  TestbedConfig config = small_config();
  config.resolver_requery_probability = 0.0;
  auto bed = Testbed::create(config);
  CampaignConfig campaign_config = fast_campaign();
  campaign_config.phase1_rounds = 2;
  Campaign campaign(*bed, campaign_config);
  campaign.run();
  // Each round's decoy resolves once (solicited); criterion (iii) tracks
  // per-decoy, so repeated rounds stay clean.
  EXPECT_EQ(campaign.unsolicited().size(), 0u);
}

}  // namespace
}  // namespace shadowprobe::core
