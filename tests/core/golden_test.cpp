// Golden byte-identity regression test.
//
// Runs a pinned small campaign (explicit config — deliberately independent
// of SHADOWPROBE_SCALE/SEED so the environment cannot shift the corpus) and
// compares the exported JSON byte-for-byte against the checked-in golden
// file. Any change to these bytes is a behaviour change: either a bug in a
// refactor that was supposed to be behaviour-preserving (the common case
// this test exists to catch — see the FlatMap/arena/interning overhaul), or
// an intentional model change, in which case regenerate with
//
//   SHADOWPROBE_REGEN_GOLDEN=1 ctest -R GoldenCampaign
//
// and review the JSON diff in the commit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

#ifndef SHADOWPROBE_SOURCE_DIR
#error "core_tests must be compiled with SHADOWPROBE_SOURCE_DIR"
#endif

const char* golden_path() {
  return SHADOWPROBE_SOURCE_DIR "/tests/data/golden_campaign.json";
}

TestbedConfig pinned_config() {
  TestbedConfig config;
  // Pinned, not from_env(): the golden bytes encode exactly this substrate.
  config.topology.apply_scale(0.25);
  config.topology.seed = 20240301;
  return config;
}

CampaignConfig pinned_campaign() {
  CampaignConfig config;
  config.total_duration = 6 * kDay;
  return config;
}

CampaignEngine::Decorator exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow::ShadowConfig{}));
  };
}

std::string run_pinned(int shards) {
  CampaignEngine engine(pinned_config(), pinned_campaign(), shards, exhibitors());
  CampaignResult result = engine.run();
  return export_campaign_json(engine.primary(), result, /*analysis_workers=*/1);
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenCampaign, ExportMatchesCheckedInGolden) {
  std::string actual = run_pinned(/*shards=*/1);
  ASSERT_FALSE(actual.empty());

  if (std::getenv("SHADOWPROBE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path()
                               << " — regenerate with SHADOWPROBE_REGEN_GOLDEN=1";
  if (actual != golden) {
    std::size_t at = 0;
    while (at < actual.size() && at < golden.size() && actual[at] == golden[at]) ++at;
    FAIL() << "export diverges from golden at byte " << at << " (golden "
           << golden.size() << " bytes, actual " << actual.size()
           << " bytes); context: \""
           << golden.substr(at > 40 ? at - 40 : 0, 80) << "\" vs \""
           << actual.substr(at > 40 ? at - 40 : 0, 80) << "\"";
  }
}

TEST(GoldenCampaign, ShardedRunReproducesGoldenBytes) {
  std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path()
                               << " — regenerate with SHADOWPROBE_REGEN_GOLDEN=1";
  EXPECT_EQ(run_pinned(/*shards=*/2), golden)
      << "2-shard export differs from the golden bytes";
}

}  // namespace
}  // namespace shadowprobe::core
