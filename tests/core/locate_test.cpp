#include "core/locate.h"

#include <gtest/gtest.h>

#include "topo/topology.h"

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;

TEST(NormalizeHop, DestinationIsAlwaysTen) {
  EXPECT_EQ(normalize_hop(9, 9), 10);
  EXPECT_EQ(normalize_hop(12, 9), 10);
  EXPECT_EQ(normalize_hop(1, 1), 10);
}

TEST(NormalizeHop, ScalesToTenBuckets) {
  EXPECT_EQ(normalize_hop(5, 10), 5);
  EXPECT_EQ(normalize_hop(1, 10), 1);
  EXPECT_EQ(normalize_hop(9, 10), 9);
  // Short paths spread proportionally.
  EXPECT_EQ(normalize_hop(2, 5), 4);
  EXPECT_EQ(normalize_hop(3, 5), 6);
  // On-wire hops never normalize to 10.
  for (int dest = 2; dest <= 16; ++dest) {
    for (int hop = 1; hop < dest; ++hop) {
      int n = normalize_hop(hop, dest);
      EXPECT_GE(n, 1);
      EXPECT_LE(n, 9) << "hop " << hop << " dest " << dest;
    }
  }
}

TEST(NormalizeHop, MonotoneInTriggerHop) {
  for (int dest : {5, 9, 12}) {
    int prev = 0;
    for (int hop = 1; hop <= dest; ++hop) {
      int n = normalize_hop(hop, dest);
      EXPECT_GE(n, prev);
      prev = n;
    }
  }
}

class LocatorTest : public ::testing::Test {
 protected:
  LocatorTest() {
    vp.id = "vp";
    vp.addr = Ipv4Addr(30, 0, 0, 1);
    PathRecord path;
    path.vp = &vp;
    path.dest_kind = DestKind::kWebSite;
    path.dest_name = "site";
    path.dest_addr = Ipv4Addr(40, 0, 0, 1);
    path.protocol = DecoyProtocol::kHttp;
    pid = ledger.add_path(path);
  }

  /// Creates the Phase-II sweep: TTL 1..max; destination responds from
  /// dest_ttl upward; ICMP hop addresses are 10.0.0.<ttl>.
  void sweep(int max_ttl, int dest_ttl) {
    for (int ttl = 1; ttl <= max_ttl; ++ttl) {
      DecoyRecord& record = ledger.create(pid, ttl * kSecond, vp.addr,
                                          Ipv4Addr(40, 0, 0, 1), DecoyProtocol::kHttp,
                                          static_cast<std::uint8_t>(ttl), true);
      if (ttl >= dest_ttl) {
        ledger.mark_response(record.id.seq, record.sent + 100 * kMillisecond);
      } else {
        hop_log[record.id.seq] = Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(ttl));
      }
    }
  }

  UnsolicitedRequest trigger_at(int ttl) {
    // Find the sweep decoy with this TTL.
    for (const auto& decoy : ledger.decoys()) {
      if (decoy.id.ttl == ttl && decoy.phase2) {
        UnsolicitedRequest request;
        request.seq = decoy.id.seq;
        request.path_id = decoy.path_id;
        request.decoy_protocol = decoy.id.protocol;
        request.request_protocol = RequestProtocol::kHttp;
        request.interval = kHour;
        return request;
      }
    }
    ADD_FAILURE() << "no sweep decoy with ttl " << ttl;
    return {};
  }

  topo::VantagePoint vp;
  DecoyLedger ledger;
  FlatMap<std::uint32_t, Ipv4Addr> hop_log;
  std::uint32_t pid = 0;
};

TEST_F(LocatorTest, MidPathObserverLocatedWithIcmpAddress) {
  sweep(/*max_ttl=*/12, /*dest_ttl=*/9);
  // Observer at hop 4: decoys with TTL >= 4 trigger.
  std::vector<UnsolicitedRequest> unsolicited;
  for (int ttl = 4; ttl <= 12; ++ttl) unsolicited.push_back(trigger_at(ttl));
  ObserverLocator locator(ledger, hop_log);
  auto findings = locator.locate(unsolicited);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].min_trigger_ttl, 4);
  EXPECT_EQ(findings[0].dest_ttl, 9);
  EXPECT_FALSE(findings[0].at_destination);
  EXPECT_EQ(findings[0].normalized_hop, normalize_hop(4, 9));
  ASSERT_TRUE(findings[0].observer_addr.has_value());
  EXPECT_EQ(*findings[0].observer_addr, Ipv4Addr(10, 0, 0, 4));
}

TEST_F(LocatorTest, DestinationObserverHasNoIcmpAddress) {
  sweep(12, 9);
  std::vector<UnsolicitedRequest> unsolicited;
  for (int ttl = 9; ttl <= 12; ++ttl) unsolicited.push_back(trigger_at(ttl));
  ObserverLocator locator(ledger, hop_log);
  auto findings = locator.locate(unsolicited);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].at_destination);
  EXPECT_EQ(findings[0].normalized_hop, 10);
  EXPECT_FALSE(findings[0].observer_addr.has_value());
}

TEST_F(LocatorTest, PathsWithoutUnsolicitedSweepResultsAreSkipped) {
  sweep(12, 9);
  ObserverLocator locator(ledger, hop_log);
  EXPECT_TRUE(locator.locate({}).empty());
}

TEST_F(LocatorTest, Phase1OnlyRequestsDoNotLocate) {
  sweep(12, 9);
  // A Phase-I decoy (phase2=false) with unsolicited requests: not locatable.
  DecoyRecord phase1 = ledger.create(pid, 0, vp.addr, Ipv4Addr(40, 0, 0, 1),
                                      DecoyProtocol::kHttp, 64, false);
  UnsolicitedRequest request;
  request.seq = phase1.id.seq;
  request.path_id = phase1.path_id;
  ObserverLocator locator(ledger, hop_log);
  EXPECT_TRUE(locator.locate({request}).empty());
}

TEST_F(LocatorTest, MinTriggerWinsOverLaterTriggers) {
  sweep(12, 9);
  // Out-of-order evidence: TTL 7 then TTL 3.
  std::vector<UnsolicitedRequest> unsolicited = {trigger_at(7), trigger_at(3)};
  ObserverLocator locator(ledger, hop_log);
  auto findings = locator.locate(unsolicited);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].min_trigger_ttl, 3);
  EXPECT_EQ(*findings[0].observer_addr, Ipv4Addr(10, 0, 0, 3));
}

}  // namespace
}  // namespace shadowprobe::core
