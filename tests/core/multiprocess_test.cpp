// Multi-process campaign execution: the exported JSON must be byte-identical
// between the in-process backend and any worker-process layout, with and
// without a fault profile — and, since the supervision layer, regardless of
// which workers die, stall, or corrupt the stream mid-campaign. A lost
// worker is respawned (bounded retries) or degraded to an in-process thread;
// either way the campaign completes with identical output, every child is
// reaped, and no descriptor leaks.
//
// The worker re-execs shadowprobe_cli --shard-worker, which always applies
// the binary's default decorator (deploy_standard_exhibitors with a default
// ShadowConfig) — so the engines here use that exact decorator, not the
// trimmed fleet other engine tests use. SHADOWPROBE_WORKER_BIN is injected
// by the build as the path to the freshly built CLI.
//
// Faults are injected with SHADOWPROBE_TEST_WORKER_FAULT =
// "<phase>:<kind>:<proc>[:<gen>|:*]" (see shard_worker.cpp); by default only
// generation 0 faults, so the respawned replacement recovers, while ":*"
// wedges every incarnation and forces the in-process degradation path.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <dirent.h>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <tuple>
#include <unistd.h>

#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

#ifndef SHADOWPROBE_WORKER_BIN
#define SHADOWPROBE_WORKER_BIN ""
#endif

const char* worker_bin() { return SHADOWPROBE_WORKER_BIN; }

bool worker_bin_available() {
  return worker_bin()[0] != '\0' && ::access(worker_bin(), X_OK) == 0;
}

TestbedConfig small_config(std::uint64_t seed = 61) {
  TestbedConfig config;
  config.topology.seed = seed;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

/// The decorator the worker binary applies — default ShadowConfig, exactly
/// as `shadowprobe_cli run`/`--shard-worker` do.
CampaignEngine::Decorator cli_exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    shadow::ShadowConfig shadow_config;
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow_config));
  };
}

/// Supervision tuned for tests: tight heartbeat so stall detection fires in
/// ~a second, near-zero backoff so respawns don't pad the run time.
SupervisionConfig fast_supervision() {
  SupervisionConfig sup;
  sup.worker_retries = 2;
  sup.heartbeat_ms = 25;
  sup.stall_timeout_ms = 1000;
  sup.backoff_base_ms = 5;
  return sup;
}

struct EngineRun {
  std::string json;
  ShardExecutionStats stats;
};

EngineRun run_engine(int shards, int procs, const CampaignConfig& campaign,
                     const std::string& exe, const SupervisionConfig& sup) {
  EngineExec exec;
  exec.shard_procs = procs;
  exec.worker_exe = procs >= 1 ? exe : "";
  exec.supervision = sup;
  CampaignEngine engine(small_config(), campaign, shards, cli_exhibitors(), exec);
  CampaignResult result = engine.run();
  EngineRun run;
  run.json = export_campaign_json(engine.primary(), result);
  run.stats = result.shard_stats;
  return run;
}

std::string run_and_export(int shards, int procs, const CampaignConfig& campaign) {
  return run_engine(shards, procs, campaign, worker_bin(), fast_supervision()).json;
}

int open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// Every child reaped: a waitpid sweep finds no zombies (and no live
/// children at all — degraded worker threads are joined, processes waited).
void expect_no_children() {
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

/// Scoped SHADOWPROBE_TEST_WORKER_FAULT so a failing assertion can't leak
/// the fault spec into later tests in the same process.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    ::setenv("SHADOWPROBE_TEST_WORKER_FAULT", spec.c_str(), 1);
  }
  ~ScopedFault() { ::unsetenv("SHADOWPROBE_TEST_WORKER_FAULT"); }
};

TEST(MultiprocessCampaign, JsonByteIdenticalToInProcessAcrossLayouts) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  std::string in_process = run_and_export(4, 0, campaign);
  ASSERT_FALSE(in_process.empty());
  // One worker still exercises the full wire protocol; four puts one shard
  // in each process.
  EXPECT_EQ(in_process, run_and_export(4, 1, campaign));
  EXPECT_EQ(in_process, run_and_export(4, 2, campaign));
  EXPECT_EQ(in_process, run_and_export(4, 4, campaign));
}

TEST(MultiprocessCampaign, SingleShardSingleWorkerMatchesInProcess) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  EXPECT_EQ(run_and_export(1, 0, campaign), run_and_export(1, 1, campaign));
}

TEST(MultiprocessCampaign, JsonByteIdenticalUnderFaultProfile) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  auto profile = sim::FaultProfile::parse("loss=0.05,jitter=10ms,retries=2,rto=30s");
  ASSERT_TRUE(profile.ok()) << profile.error().message;
  campaign.faults = profile.value();
  std::string in_process = run_and_export(4, 0, campaign);
  ASSERT_FALSE(in_process.empty());
  EXPECT_NE(in_process.find("\"fault_profile\""), std::string::npos);
  EXPECT_EQ(in_process, run_and_export(4, 2, campaign));
  EXPECT_EQ(in_process, run_and_export(4, 4, campaign));
}

TEST(MultiprocessCampaign, MissingWorkerBinaryFailsConstruction) {
  // Supervision recovers from workers that die after launch; a binary that
  // cannot even be executed is a configuration error and still throws up
  // front, before any campaign work happens.
  EngineExec exec;
  exec.shard_procs = 2;
  exec.worker_exe = "/nonexistent/shadowprobe_worker";
  EXPECT_THROW(
      CampaignEngine(small_config(), fast_campaign(), 4, cli_exhibitors(), exec),
      std::runtime_error);
}

TEST(MultiprocessCampaign, WorkerProcsRecordedInShardStats) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  EngineExec exec;
  exec.shard_procs = 2;
  exec.worker_exe = worker_bin();
  CampaignEngine engine(small_config(), fast_campaign(), 4, cli_exhibitors(), exec);
  CampaignResult result = engine.run();
  EXPECT_EQ(result.shard_stats.worker_procs, 2);
  EXPECT_EQ(result.shard_stats.effective_shards, 4);
  EXPECT_EQ(result.shard_stats.per_shard.size(), 4u);
  for (const auto& stats : result.shard_stats.per_shard) EXPECT_GT(stats.processed, 0u);
  EXPECT_GT(engine.events_processed(), 0u);
}

// -- Supervision: workers that misbehave from the very first frame -----------

TEST(Supervision, CleanRunHasZeroRecoveryCounters) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  EngineRun run = run_engine(4, 2, fast_campaign(), worker_bin(), fast_supervision());
  EXPECT_EQ(run.stats.workers_lost, 0u);
  EXPECT_EQ(run.stats.workers_respawned, 0u);
  EXPECT_EQ(run.stats.workers_degraded, 0u);
  EXPECT_EQ(run.stats.shards_retried, 0u);
}

TEST(Supervision, ExitingWorkerRecoversViaDegradation) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  // /bin/false exits immediately, every incarnation: no replacement process
  // can ever come up, so both slots must exhaust their budget and degrade to
  // in-process execution — and the campaign output must not change. The
  // controller's writes land on sockets whose reader is already gone; the
  // process surviving those writes at all is the SIGPIPE regression check,
  // so pin the disposition to the default (terminate) rather than inheriting
  // whatever the test runner set.
  ::signal(SIGPIPE, SIG_DFL);
  CampaignConfig campaign = fast_campaign();
  std::string clean = run_and_export(4, 0, campaign);
  SupervisionConfig sup = fast_supervision();
  sup.worker_retries = 1;
  EngineRun run = run_engine(4, 2, campaign, "/bin/false", sup);
  EXPECT_EQ(clean, run.json);
  EXPECT_GE(run.stats.workers_lost, 2u);
  EXPECT_EQ(run.stats.workers_degraded, 2u);
  EXPECT_GE(run.stats.shards_retried, 4u);
  expect_no_children();
}

TEST(Supervision, BabblingWorkerRecoversViaDegradation) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  // /bin/cat echoes our own frames back: the controller reads a validly
  // framed message of an unexpected type. That is protocol corruption, not
  // results — the worker is lost (and, as cat never dies on its own, must
  // be killed and reaped by the supervisor), then the slot degrades.
  CampaignConfig campaign = fast_campaign();
  std::string clean = run_and_export(2, 0, campaign);
  SupervisionConfig sup = fast_supervision();
  sup.worker_retries = 0;  // degrade on first loss
  EngineRun run = run_engine(2, 1, campaign, "/bin/cat", sup);
  EXPECT_EQ(clean, run.json);
  EXPECT_GE(run.stats.workers_lost, 1u);
  EXPECT_EQ(run.stats.workers_respawned, 0u);
  EXPECT_EQ(run.stats.workers_degraded, 1u);
  expect_no_children();
}

// -- Recovery matrix: phase x failure kind -----------------------------------
//
// Each case injects one failure into worker 1 of a 4-shard, 4-process
// campaign at the moment the named phase command arrives — after the worker
// has already contributed results to every earlier phase. The campaign must
// complete with JSON byte-identical to the clean in-process run, report the
// recovery in its counters, reap every child, and leak no descriptors.

class RecoveryMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(RecoveryMatrix, ByteIdenticalAfterWorkerLoss) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  const auto& [phase, kind] = GetParam();
  CampaignConfig campaign = fast_campaign();
  std::string clean = run_and_export(4, 0, campaign);
  ASSERT_FALSE(clean.empty());
  const int fds_before = open_fd_count();
  ScopedFault fault(std::string(phase) + ":" + kind + ":1");
  EngineRun run = run_engine(4, 4, campaign, worker_bin(), fast_supervision());
  EXPECT_EQ(clean, run.json) << "recovered run diverged for " << phase << ":" << kind;
  // Generation 0 faults, generation 1 recovers: exactly one loss, one
  // respawn, and worker 1's single shard re-dispatched.
  EXPECT_EQ(run.stats.workers_lost, 1u);
  EXPECT_EQ(run.stats.workers_respawned, 1u);
  EXPECT_EQ(run.stats.workers_degraded, 0u);
  EXPECT_EQ(run.stats.shards_retried, 1u);
  expect_no_children();
  EXPECT_EQ(open_fd_count(), fds_before);
}

INSTANTIATE_TEST_SUITE_P(
    Recovery, RecoveryMatrix,
    ::testing::Combine(::testing::Values("screening", "phase1", "phase2"),
                       ::testing::Values("kill", "exit", "stall", "corrupt")),
    [](const ::testing::TestParamInfo<RecoveryMatrix::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      name += "_";
      name += std::get<1>(info.param);
      return name;
    });

TEST(Recovery, ExhaustedRetriesDegradeInProcessByteIdentically) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  // ":*" faults every incarnation: the replacement dies the same way during
  // replay, the budget runs out, and the slot must finish its shards on an
  // in-process degraded worker — still byte-identical.
  CampaignConfig campaign = fast_campaign();
  std::string clean = run_and_export(4, 0, campaign);
  const int fds_before = open_fd_count();
  ScopedFault fault("phase1:kill:1:*");
  SupervisionConfig sup = fast_supervision();
  sup.worker_retries = 1;
  EngineRun run = run_engine(4, 4, campaign, worker_bin(), sup);
  EXPECT_EQ(clean, run.json);
  EXPECT_EQ(run.stats.workers_lost, 2u);  // original + doomed replacement
  EXPECT_EQ(run.stats.workers_respawned, 1u);
  EXPECT_EQ(run.stats.workers_degraded, 1u);
  EXPECT_EQ(run.stats.shards_retried, 2u);
  expect_no_children();
  EXPECT_EQ(open_fd_count(), fds_before);
}

}  // namespace
}  // namespace shadowprobe::core
