// Multi-process campaign execution: the exported JSON must be byte-identical
// between the in-process backend and any worker-process layout, with and
// without a fault profile; a dead or babbling worker must fail the campaign
// with a controller-side error, never a hang.
//
// The worker re-execs shadowprobe_cli --shard-worker, which always applies
// the binary's default decorator (deploy_standard_exhibitors with a default
// ShadowConfig) — so the engines here use that exact decorator, not the
// trimmed fleet other engine tests use. SHADOWPROBE_WORKER_BIN is injected
// by the build as the path to the freshly built CLI.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <dirent.h>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "shadow/profiles.h"

namespace shadowprobe::core {
namespace {

#ifndef SHADOWPROBE_WORKER_BIN
#define SHADOWPROBE_WORKER_BIN ""
#endif

const char* worker_bin() { return SHADOWPROBE_WORKER_BIN; }

bool worker_bin_available() {
  return worker_bin()[0] != '\0' && ::access(worker_bin(), X_OK) == 0;
}

TestbedConfig small_config(std::uint64_t seed = 61) {
  TestbedConfig config;
  config.topology.seed = seed;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 4;
  return config;
}

CampaignConfig fast_campaign() {
  CampaignConfig config;
  config.phase1_window = 2 * kHour;
  config.phase2_grace = 4 * kHour;
  config.phase2_window = 2 * kHour;
  config.total_duration = 3 * kDay;
  return config;
}

/// The decorator the worker binary applies — default ShadowConfig, exactly
/// as `shadowprobe_cli run`/`--shard-worker` do.
CampaignEngine::Decorator cli_exhibitors() {
  return [](Testbed& replica) -> std::shared_ptr<void> {
    shadow::ShadowConfig shadow_config;
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow_config));
  };
}

std::string run_and_export(int shards, int procs, const CampaignConfig& campaign) {
  EngineExec exec;
  exec.shard_procs = procs;
  exec.worker_exe = procs >= 1 ? worker_bin() : "";
  CampaignEngine engine(small_config(), campaign, shards, cli_exhibitors(), exec);
  CampaignResult result = engine.run();
  return export_campaign_json(engine.primary(), result);
}

TEST(MultiprocessCampaign, JsonByteIdenticalToInProcessAcrossLayouts) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  std::string in_process = run_and_export(4, 0, campaign);
  ASSERT_FALSE(in_process.empty());
  // One worker still exercises the full wire protocol; four puts one shard
  // in each process.
  EXPECT_EQ(in_process, run_and_export(4, 1, campaign));
  EXPECT_EQ(in_process, run_and_export(4, 2, campaign));
  EXPECT_EQ(in_process, run_and_export(4, 4, campaign));
}

TEST(MultiprocessCampaign, SingleShardSingleWorkerMatchesInProcess) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  EXPECT_EQ(run_and_export(1, 0, campaign), run_and_export(1, 1, campaign));
}

TEST(MultiprocessCampaign, JsonByteIdenticalUnderFaultProfile) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  CampaignConfig campaign = fast_campaign();
  auto profile = sim::FaultProfile::parse("loss=0.05,jitter=10ms,retries=2,rto=30s");
  ASSERT_TRUE(profile.ok()) << profile.error().message;
  campaign.faults = profile.value();
  std::string in_process = run_and_export(4, 0, campaign);
  ASSERT_FALSE(in_process.empty());
  EXPECT_NE(in_process.find("\"fault_profile\""), std::string::npos);
  EXPECT_EQ(in_process, run_and_export(4, 2, campaign));
  EXPECT_EQ(in_process, run_and_export(4, 4, campaign));
}

TEST(MultiprocessCampaign, ExitingWorkerFailsTheCampaignWithError) {
  // /bin/false exits immediately: the controller must surface a clear
  // error (nonzero child status), not hang waiting on the pipe.
  EngineExec exec;
  exec.shard_procs = 2;
  exec.worker_exe = "/bin/false";
  EXPECT_THROW(
      {
        CampaignEngine engine(small_config(), fast_campaign(), 4, cli_exhibitors(),
                              exec);
        engine.run();
      },
      std::runtime_error);
}

TEST(MultiprocessCampaign, BabblingWorkerFailsTheCampaignWithError) {
  // /bin/cat echoes our init frame back: the controller reads a frame with
  // an unexpected type (or its own magic in the wrong place) and must
  // reject it rather than treat it as results.
  EngineExec exec;
  exec.shard_procs = 1;
  exec.worker_exe = "/bin/cat";
  EXPECT_THROW(
      {
        CampaignEngine engine(small_config(), fast_campaign(), 2, cli_exhibitors(),
                              exec);
        engine.run();
      },
      std::runtime_error);
}

TEST(MultiprocessCampaign, MissingWorkerBinaryFailsConstruction) {
  EngineExec exec;
  exec.shard_procs = 2;
  exec.worker_exe = "/nonexistent/shadowprobe_worker";
  EXPECT_THROW(
      CampaignEngine(small_config(), fast_campaign(), 4, cli_exhibitors(), exec),
      std::runtime_error);
}

int open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(MultiprocessCampaign, DyingWorkerMidCampaignIsReapedWithNamedError) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  // The hook makes worker 1 _exit(43) the moment the Phase-II command
  // arrives — mid-campaign, after it has already produced barrier results.
  ::setenv("SHADOWPROBE_TEST_WORKER_DIE_AT_PHASE2", "1", 1);
  const int fds_before = open_fd_count();
  std::string message;
  {
    EngineExec exec;
    exec.shard_procs = 2;
    exec.worker_exe = worker_bin();
    CampaignEngine engine(small_config(), fast_campaign(), 4, cli_exhibitors(), exec);
    try {
      engine.run();
    } catch (const std::runtime_error& e) {
      message = e.what();
      // The error must surface only after full teardown: every child reaped
      // (no zombies for anyone else to trip over) and every socketpair end
      // closed — even though the backend still exists.
      errno = 0;
      EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
      EXPECT_EQ(errno, ECHILD);
      EXPECT_EQ(open_fd_count(), fds_before);
    }
  }
  ::unsetenv("SHADOWPROBE_TEST_WORKER_DIE_AT_PHASE2");
  ASSERT_FALSE(message.empty()) << "campaign with a dying worker did not fail";
  EXPECT_NE(message.find("exit status 43"), std::string::npos) << message;
}

TEST(MultiprocessCampaign, WorkerProcsRecordedInShardStats) {
  if (!worker_bin_available()) GTEST_SKIP() << "worker binary not built";
  EngineExec exec;
  exec.shard_procs = 2;
  exec.worker_exe = worker_bin();
  CampaignEngine engine(small_config(), fast_campaign(), 4, cli_exhibitors(), exec);
  CampaignResult result = engine.run();
  EXPECT_EQ(result.shard_stats.worker_procs, 2);
  EXPECT_EQ(result.shard_stats.effective_shards, 4);
  EXPECT_EQ(result.shard_stats.per_shard.size(), 4u);
  for (const auto& stats : result.shard_stats.per_shard) EXPECT_GT(stats.processed, 0u);
  EXPECT_GT(engine.events_processed(), 0u);
}

}  // namespace
}  // namespace shadowprobe::core
