// Honeypot services on a miniature star network: DNS wildcard answers and
// logging, HTTP homepage/404 and logging, TLS SNI capture.
#include "core/honeypot.h"

#include <gtest/gtest.h>

#include "net/http.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/tcp_stack.h"
#include "sim/udp_util.h"

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;
using net::Prefix;

constexpr Ipv4Addr kPotAddr(20, 30, 0, 1);
constexpr Ipv4Addr kClientAddr(20, 40, 0, 1);

class HoneypotTest : public ::testing::Test {
 protected:
  HoneypotTest() : net(loop), server("US", logbook, Rng(1)), client_stack_rng(2) {
    hub = net.add_router("hub", Ipv4Addr(20, 20, 0, 1));
    pot_node = net.add_host("pot", kPotAddr, nullptr);
    client_node = net.add_host("client", kClientAddr, nullptr);
    net.routes(pot_node).set_default(hub);
    net.routes(client_node).set_default(hub);
    net.routes(hub).add(Prefix(kPotAddr, 32), pot_node);
    net.routes(hub).add(Prefix(kClientAddr, 32), client_node);
    server.bind(net, pot_node, kPotAddr, build_experiment_zone({kPotAddr}));

    client = std::make_unique<ClientHost>(net, client_node);
    net.set_handler(client_node, client.get());
  }

  struct ClientHost : sim::DatagramHandler {
    ClientHost(sim::Network& net, sim::NodeId node) : stack(net, node, Rng(3)) {}
    void on_datagram(sim::Network&, sim::NodeId, const net::Ipv4Datagram& dgram) override {
      if (dgram.header.protocol == net::IpProto::kTcp) {
        stack.on_segment(dgram);
      } else if (dgram.header.protocol == net::IpProto::kUdp) {
        auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                            dgram.header.dst);
        if (!udp.ok()) return;
        auto dns = net::DnsMessage::decode(BytesView(udp.value().payload));
        if (dns.ok()) dns_responses.push_back(dns.value());
      }
    }
    sim::TcpStack stack;
    std::vector<net::DnsMessage> dns_responses;
  };

  DecoyId make_decoy(std::uint32_t seq) {
    DecoyId id;
    id.time_sec = 100;
    id.vp = kClientAddr;
    id.dst = Ipv4Addr(8, 8, 8, 8);
    id.ttl = 64;
    id.protocol = DecoyProtocol::kDns;
    id.seq = seq;
    return id;
  }

  sim::EventLoop loop;
  sim::Network net;
  HoneypotLogbook logbook;
  HoneypotServer server;
  sim::NodeId hub, pot_node, client_node;
  std::unique_ptr<ClientHost> client;
  Rng client_stack_rng;
};

TEST_F(HoneypotTest, DnsQueriesForDecoyDomainsAnsweredAndLogged) {
  DecoyId id = make_decoy(42);
  net::DnsMessage query = net::DnsMessage::query(5, decoy_domain(id), net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client_node, kClientAddr, kPotAddr, 4444, 53, BytesView(wire));
  loop.run();

  ASSERT_EQ(client->dns_responses.size(), 1u);
  const auto& response = client->dns_responses[0];
  EXPECT_TRUE(response.header.aa);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<Ipv4Addr>(response.answers[0].rdata), kPotAddr);
  EXPECT_EQ(response.answers[0].ttl, 3600u);  // the paper's wildcard TTL

  ASSERT_EQ(logbook.size(), 1u);
  const HoneypotHit& hit = logbook.hits()[0];
  EXPECT_EQ(hit.protocol, RequestProtocol::kDns);
  EXPECT_EQ(hit.origin, kClientAddr);
  EXPECT_EQ(hit.location, "US");
  ASSERT_TRUE(hit.decoy.has_value());
  EXPECT_EQ(hit.decoy->seq, 42u);
}

TEST_F(HoneypotTest, NonDecoyNamesLoggedWithoutIdentifier) {
  net::DnsMessage query = net::DnsMessage::query(
      6, experiment_zone().child("www"), net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client_node, kClientAddr, kPotAddr, 4444, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(logbook.size(), 1u);
  EXPECT_FALSE(logbook.hits()[0].decoy.has_value());
  ASSERT_EQ(client->dns_responses.size(), 1u);
  EXPECT_FALSE(client->dns_responses[0].answers.empty());
}

TEST_F(HoneypotTest, HttpHomepageDocumentsTheExperiment) {
  DecoyId id = make_decoy(7);
  std::string host = decoy_domain(id).str();
  std::string body_received;
  client->stack.set_on_established([&](const sim::ConnKey& key) {
    net::HttpRequest request;
    request.target = "/";
    request.headers.add("Host", host);
    Bytes wire = request.encode();
    client->stack.send_data(key, BytesView(wire));
  });
  client->stack.set_on_data([&](const sim::ConnKey&, BytesView data) {
    auto response = net::HttpResponse::decode(data);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
    body_received = to_string(BytesView(response.value().body));
  });
  client->stack.connect(kClientAddr, kPotAddr, 80);
  loop.run();
  EXPECT_NE(body_received.find("measurement"), std::string::npos);
  EXPECT_NE(body_received.find("Contact"), std::string::npos);

  ASSERT_EQ(logbook.size(), 1u);
  const HoneypotHit& hit = logbook.hits()[0];
  EXPECT_EQ(hit.protocol, RequestProtocol::kHttp);
  EXPECT_EQ(hit.http_target, "/");
  ASSERT_TRUE(hit.decoy.has_value());
  EXPECT_EQ(hit.decoy->seq, 7u);
}

TEST_F(HoneypotTest, HttpEnumerationGets404ButIsLogged) {
  int status = 0;
  client->stack.set_on_established([&](const sim::ConnKey& key) {
    net::HttpRequest request;
    request.target = "/.git/config";
    request.headers.add("Host", "irrelevant.example.com");
    Bytes wire = request.encode();
    client->stack.send_data(key, BytesView(wire));
  });
  client->stack.set_on_data([&](const sim::ConnKey&, BytesView data) {
    auto response = net::HttpResponse::decode(data);
    ASSERT_TRUE(response.ok());
    status = response.value().status;
  });
  client->stack.connect(kClientAddr, kPotAddr, 80);
  loop.run();
  EXPECT_EQ(status, 404);
  ASSERT_EQ(logbook.size(), 1u);
  EXPECT_EQ(logbook.hits()[0].http_target, "/.git/config");
  EXPECT_FALSE(logbook.hits()[0].decoy.has_value());
}

TEST_F(HoneypotTest, TlsClientHelloSniCapturedAndGreeted) {
  DecoyId id = make_decoy(9);
  bool got_server_hello = false;
  client->stack.set_on_established([&](const sim::ConnKey& key) {
    net::TlsClientHello hello;
    hello.cipher_suites = {0x1301};
    hello.set_sni(decoy_domain(id).str());
    Bytes record = hello.encode_record();
    client->stack.send_data(key, BytesView(record));
  });
  client->stack.set_on_data([&](const sim::ConnKey&, BytesView data) {
    got_server_hello = net::TlsServerHello::decode_record(data).ok();
  });
  client->stack.connect(kClientAddr, kPotAddr, 443);
  loop.run();
  EXPECT_TRUE(got_server_hello);
  ASSERT_EQ(logbook.size(), 1u);
  const HoneypotHit& hit = logbook.hits()[0];
  EXPECT_EQ(hit.protocol, RequestProtocol::kHttps);
  ASSERT_TRUE(hit.decoy.has_value());
  EXPECT_EQ(hit.decoy->seq, 9u);
}

TEST_F(HoneypotTest, LogbookObserversFireOnEveryHit) {
  int observed = 0;
  logbook.add_observer([&](const HoneypotHit&) { ++observed; });
  DecoyId id = make_decoy(1);
  net::DnsMessage query = net::DnsMessage::query(5, decoy_domain(id), net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client_node, kClientAddr, kPotAddr, 4444, 53, BytesView(wire));
  sim::send_udp(net, client_node, kClientAddr, kPotAddr, 4445, 53, BytesView(wire));
  loop.run();
  EXPECT_EQ(observed, 2);
}

TEST(ExperimentZone, WildcardResolvesToAllHoneypots) {
  std::vector<Ipv4Addr> pots = {Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1),
                                Ipv4Addr(3, 0, 0, 1)};
  dnssrv::Zone zone = build_experiment_zone(pots);
  auto result = zone.lookup(experiment_suffix().child("whatever-label"), net::DnsType::kA);
  ASSERT_EQ(result.kind, dnssrv::LookupKind::kAnswer);
  EXPECT_EQ(result.answers.size(), 3u);
  // NS records for delegation exist.
  auto ns = zone.lookup(experiment_zone(), net::DnsType::kNs);
  EXPECT_EQ(ns.kind, dnssrv::LookupKind::kAnswer);
  EXPECT_EQ(ns.answers.size(), 3u);
}

}  // namespace
}  // namespace shadowprobe::core
