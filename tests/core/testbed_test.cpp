// Testbed assembly invariants: every substrate service is reachable and
// correctly configured.
#include "core/testbed.h"

#include <gtest/gtest.h>

#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::core {
namespace {

class TestbedTest : public ::testing::Test {
 protected:
  TestbedTest() {
    TestbedConfig config;
    config.topology.seed = 71;
    config.topology.global_vps = 4;
    config.topology.cn_vps = 4;
    config.topology.web_sites = 6;
    bed = Testbed::create(config);
  }
  std::unique_ptr<Testbed> bed;
};

TEST_F(TestbedTest, AllResolversInstantiated) {
  // 20 public + self-built + the 114DNS US anycast instance.
  EXPECT_EQ(bed->resolver_names().size(), 22u);
  EXPECT_NE(bed->resolver("Google"), nullptr);
  EXPECT_NE(bed->resolver("114DNS"), nullptr);
  EXPECT_NE(bed->resolver("114DNS-US"), nullptr);
  EXPECT_NE(bed->resolver("self-built"), nullptr);
  EXPECT_EQ(bed->resolver("nonexistent"), nullptr);
}

TEST_F(TestbedTest, RootHintsCoverThirteenRoots) {
  EXPECT_EQ(bed->root_hints().size(), 13u);
}

TEST_F(TestbedTest, ControlResolverIsClean) {
  EXPECT_EQ(bed->resolver("self-built")->quirks().requery_probability, 0.0);
  // Other resolvers carry operator-specific (nonzero) re-query rates.
  EXPECT_GT(bed->resolver("Google")->quirks().requery_probability, 0.0);
  // The 114DNS US edge barely re-queries (case study II support).
  EXPECT_LT(bed->resolver("114DNS-US")->quirks().requery_probability,
            bed->resolver("114DNS")->quirks().requery_probability);
}

TEST_F(TestbedTest, ResolverEgressSplitsFromServiceAddress) {
  auto* google = bed->resolver("Google");
  EXPECT_NE(google->egress_addr(), net::Ipv4Addr::must_parse("8.8.8.8"));
  EXPECT_TRUE(net::Prefix(net::Ipv4Addr::must_parse("8.8.8.8"), 16)
                  .contains(google->egress_addr()));
}

TEST_F(TestbedTest, WebServersServeEverySite) {
  for (const auto& site : bed->topology().web_sites()) {
    EXPECT_NE(bed->web_server(site.rank), nullptr) << site.domain;
  }
  EXPECT_EQ(bed->web_server(424242), nullptr);
}

TEST_F(TestbedTest, ObliviousProxyIsUp) {
  net::Ipv4Addr proxy = bed->oblivious_proxy_addr();
  EXPECT_NE(proxy.value(), 0u);
  // Hosted in Cloudflare's network (a neutral relay operator).
  EXPECT_EQ(bed->topology().geo().asn(proxy), 13335u);
}

TEST_F(TestbedTest, HoneypotsShareOneLogbook) {
  // A DNS query to each honeypot lands in the same logbook.
  sim::NodeId client = bed->add_host_in_as(24940, "logbook-client");
  net::Ipv4Addr client_addr = bed->net().address(client);
  for (const auto& pot : bed->topology().honeypots()) {
    net::DnsMessage query = net::DnsMessage::query(
        1, experiment_zone().child("www").child("probe-" + pot.location),
        net::DnsType::kA);
    Bytes wire = query.encode();
    sim::send_udp(bed->net(), client, client_addr, pot.addr, 4000, 53, BytesView(wire));
  }
  bed->loop().run_until(kMinute);
  EXPECT_EQ(bed->logbook().size(), 3u);
  std::set<std::string> locations;
  for (const auto& hit : bed->logbook().hits()) locations.insert(hit.location);
  EXPECT_EQ(locations.size(), 3u);
}

TEST_F(TestbedTest, ForkRngIsLabelDependent) {
  Rng a = bed->fork_rng("alpha");
  Rng b = bed->fork_rng("beta");
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST_F(TestbedTest, SignatureDbAndBlocklistAvailable) {
  EXPECT_GE(bed->signatures().enumeration_paths().size(), 20u);
  EXPECT_EQ(bed->blocklist().entry_count(), 0u);  // populated by deployments
}

}  // namespace
}  // namespace shadowprobe::core
