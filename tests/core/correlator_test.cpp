#include "core/correlator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/topology.h"

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;

/// Builds a ledger with one VP and a few paths/decoys, plus synthetic hits.
class CorrelatorTest : public ::testing::Test {
 protected:
  CorrelatorTest() {
    vp.id = "test-vp";
    vp.addr = Ipv4Addr(30, 0, 0, 1);

    PathRecord resolver_path;
    resolver_path.vp = &vp;
    resolver_path.dest_kind = DestKind::kPublicResolver;
    resolver_path.dest_name = "Google";
    resolver_path.dest_addr = Ipv4Addr(8, 8, 8, 8);
    resolver_path.protocol = DecoyProtocol::kDns;
    resolver_pid = ledger.add_path(resolver_path);

    PathRecord root_path = resolver_path;
    root_path.dest_kind = DestKind::kRoot;
    root_path.dest_name = "a.root";
    root_path.dest_addr = Ipv4Addr(198, 41, 0, 4);
    root_pid = ledger.add_path(root_path);

    PathRecord web_path;
    web_path.vp = &vp;
    web_path.dest_kind = DestKind::kWebSite;
    web_path.dest_name = "www.top0001-site.com";
    web_path.dest_addr = Ipv4Addr(40, 0, 0, 1);
    web_path.protocol = DecoyProtocol::kHttp;
    web_pid = ledger.add_path(web_path);
  }

  DecoyRecord make_decoy(std::uint32_t path_id, DecoyProtocol protocol,
                          SimTime sent = 1000 * kSecond) {
    const PathRecord& path = ledger.path(path_id);
    return ledger.create(path_id, sent, vp.addr, path.dest_addr, protocol, 64, false);
  }

  HoneypotHit hit_for(const DecoyRecord& decoy, RequestProtocol protocol,
                      SimDuration after, Ipv4Addr origin = Ipv4Addr(50, 0, 0, 1)) {
    HoneypotHit hit;
    hit.time = decoy.sent + after;
    hit.protocol = protocol;
    hit.origin = origin;
    hit.domain = decoy.domain;
    hit.decoy = decoy.id;
    return hit;
  }

  topo::VantagePoint vp;
  DecoyLedger ledger;
  std::uint32_t resolver_pid = 0, root_pid = 0, web_pid = 0;
};

TEST_F(CorrelatorTest, FirstResolutionIsSolicitedRestIsNot) {
  DecoyRecord decoy = make_decoy(resolver_pid, DecoyProtocol::kDns);
  std::vector<HoneypotHit> hits = {
      hit_for(decoy, RequestProtocol::kDns, 300 * kMillisecond),  // recursion: solicited
      hit_for(decoy, RequestProtocol::kDns, 20 * kSecond),        // duplicate: unsolicited
      hit_for(decoy, RequestProtocol::kDns, 2 * kDay),            // late: unsolicited
  };
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify(hits);
  ASSERT_EQ(unsolicited.size(), 2u);
  EXPECT_EQ(unsolicited[0].interval, 20 * kSecond);
  EXPECT_EQ(unsolicited[1].interval, 2 * kDay);
  EXPECT_EQ(unsolicited[0].decoy_protocol, DecoyProtocol::kDns);
  EXPECT_EQ(unsolicited[0].request_protocol, RequestProtocol::kDns);
}

TEST_F(CorrelatorTest, HttpAndHttpsRequestsAreAlwaysUnsolicited) {
  DecoyRecord decoy = make_decoy(resolver_pid, DecoyProtocol::kDns);
  std::vector<HoneypotHit> hits = {
      hit_for(decoy, RequestProtocol::kHttp, kHour),
      hit_for(decoy, RequestProtocol::kHttps, 2 * kHour),
  };
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify(hits);
  EXPECT_EQ(unsolicited.size(), 2u);
}

TEST_F(CorrelatorTest, DnsQueryBearingWebDecoyDataIsUnsolicited) {
  // Criterion (i): HTTP decoy data re-appearing as a DNS query.
  DecoyRecord decoy = make_decoy(web_pid, DecoyProtocol::kHttp);
  std::vector<HoneypotHit> hits = {hit_for(decoy, RequestProtocol::kDns, kMinute)};
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify(hits);
  ASSERT_EQ(unsolicited.size(), 1u);
  EXPECT_EQ(unsolicited[0].decoy_protocol, DecoyProtocol::kHttp);
}

TEST_F(CorrelatorTest, DecoysToAuthoritativeDestinationsExpectNoResolution) {
  // A DNS decoy aimed at a root server: even the first honeypot DNS query
  // is unsolicited (no recursive resolution is expected on that path).
  DecoyRecord decoy = make_decoy(root_pid, DecoyProtocol::kDns);
  std::vector<HoneypotHit> hits = {hit_for(decoy, RequestProtocol::kDns, kHour)};
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify(hits);
  EXPECT_EQ(unsolicited.size(), 1u);
}

TEST_F(CorrelatorTest, HitsWithoutValidIdentifierAreDropped) {
  DecoyRecord decoy = make_decoy(resolver_pid, DecoyProtocol::kDns);
  HoneypotHit no_id = hit_for(decoy, RequestProtocol::kHttp, kHour);
  no_id.decoy.reset();
  HoneypotHit forged = hit_for(decoy, RequestProtocol::kHttp, kHour);
  forged.decoy->vp = Ipv4Addr(99, 99, 99, 99);  // identifier does not match ledger
  HoneypotHit unknown_seq = hit_for(decoy, RequestProtocol::kHttp, kHour);
  unknown_seq.decoy->seq = 424242;
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify({no_id, forged, unknown_seq});
  EXPECT_TRUE(unsolicited.empty());
}

TEST_F(CorrelatorTest, ProblematicPathsAreDeduplicated) {
  DecoyRecord a = make_decoy(resolver_pid, DecoyProtocol::kDns);
  DecoyRecord b = make_decoy(web_pid, DecoyProtocol::kHttp);
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify({
      hit_for(a, RequestProtocol::kHttp, kHour),
      hit_for(a, RequestProtocol::kHttps, 2 * kHour),
      hit_for(b, RequestProtocol::kDns, kMinute),
  });
  auto paths = Correlator::problematic_paths(unsolicited);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths.count(resolver_pid));
  EXPECT_TRUE(paths.count(web_pid));
}

TEST_F(CorrelatorTest, IntervalIsMeasuredFromEmission) {
  DecoyRecord decoy = make_decoy(resolver_pid, DecoyProtocol::kDns, 5 * kDay);
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify({hit_for(decoy, RequestProtocol::kHttp, 10 * kDay)});
  ASSERT_EQ(unsolicited.size(), 1u);
  EXPECT_EQ(unsolicited[0].interval, 10 * kDay);
  EXPECT_EQ(unsolicited[0].hit.time, 15 * kDay);
}

TEST_F(CorrelatorTest, PerDecoySolicitedTracking) {
  // Two decoys on the same path: each gets its own solicited first query.
  DecoyRecord first = make_decoy(resolver_pid, DecoyProtocol::kDns);
  DecoyRecord second = make_decoy(resolver_pid, DecoyProtocol::kDns);
  Correlator correlator(ledger);
  auto unsolicited = correlator.classify({
      hit_for(first, RequestProtocol::kDns, kSecond),
      hit_for(second, RequestProtocol::kDns, kSecond),
  });
  EXPECT_TRUE(unsolicited.empty());
}

}  // namespace
}  // namespace shadowprobe::core

namespace shadowprobe::core {
namespace {

TEST_F(CorrelatorTest, OutOfOrderDuplicateQnamesClassifyByCaptureTime) {
  // Regression: criterion (iii) is temporal — the *earliest* DNS arrival per
  // seq is the solicited resolution. A merged multi-shard logbook handed
  // over out of order must not crown a later duplicate as solicited.
  DecoyRecord decoy = make_decoy(resolver_pid, DecoyProtocol::kDns);
  HoneypotHit resolution = hit_for(decoy, RequestProtocol::kDns, 300 * kMillisecond);
  HoneypotHit replay = hit_for(decoy, RequestProtocol::kDns, 2 * kDay);
  Correlator correlator(ledger);
  // Replay first in the vector: iteration order must not decide.
  auto unsolicited = correlator.classify({replay, resolution});
  ASSERT_EQ(unsolicited.size(), 1u);
  EXPECT_EQ(unsolicited[0].interval, 2 * kDay);
  // And the ordered input gives the same verdicts.
  auto ordered = correlator.classify({resolution, replay});
  ASSERT_EQ(ordered.size(), 1u);
  EXPECT_EQ(ordered[0].interval, 2 * kDay);
}

TEST_F(CorrelatorTest, ParallelClassifyMatchesSerial) {
  // A corpus large enough to clear the parallel grain, spread over three
  // decoys, in deliberately scrambled input order.
  DecoyRecord a = make_decoy(resolver_pid, DecoyProtocol::kDns);
  DecoyRecord b = make_decoy(root_pid, DecoyProtocol::kDns);
  DecoyRecord c = make_decoy(web_pid, DecoyProtocol::kHttp);
  std::vector<HoneypotHit> hits;
  hits.push_back(hit_for(a, RequestProtocol::kDns, 200 * kMillisecond));  // solicited
  for (int i = 0; i < 40; ++i) {
    hits.push_back(hit_for(a, RequestProtocol::kDns, kMinute + i * kSecond));
    hits.push_back(hit_for(b, RequestProtocol::kDns, kHour + i * kSecond));
    hits.push_back(hit_for(c, RequestProtocol::kHttp, kDay + i * kSecond));
  }
  std::reverse(hits.begin(), hits.end());

  Correlator correlator(ledger);
  auto serial = correlator.classify(hits, nullptr, 1);
  for (int workers : {2, 3, 4, 8}) {
    auto parallel = correlator.classify(hits, nullptr, workers);
    ASSERT_EQ(parallel.size(), serial.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].seq, serial[i].seq);
      EXPECT_EQ(parallel[i].interval, serial[i].interval);
      EXPECT_EQ(parallel[i].request_protocol, serial[i].request_protocol);
      EXPECT_EQ(parallel[i].hit.time, serial[i].hit.time);
    }
  }
}

TEST_F(CorrelatorTest, ReplicatedDecoysAreExcludedFromDnsShadowing) {
  DecoyRecord decoy = make_decoy(resolver_pid, DecoyProtocol::kDns);
  std::vector<HoneypotHit> hits = {
      hit_for(decoy, RequestProtocol::kDns, 300 * kMillisecond),  // resolution
      hit_for(decoy, RequestProtocol::kDns, 1 * kSecond),         // replica's resolver
      hit_for(decoy, RequestProtocol::kHttp, kHour),              // probing stays counted
  };
  Correlator correlator(ledger);
  FlatSet<std::uint32_t> replicated;
  replicated.insert(decoy.id.seq);
  auto filtered = correlator.classify(hits, &replicated);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].request_protocol, RequestProtocol::kHttp);
  // Without the filter, the duplicate DNS arrival counts as unsolicited.
  auto unfiltered = correlator.classify(hits);
  EXPECT_EQ(unfiltered.size(), 2u);
}

}  // namespace
}  // namespace shadowprobe::core
