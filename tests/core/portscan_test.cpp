#include "core/portscan.h"

#include <gtest/gtest.h>

#include "shadow/observers.h"

namespace shadowprobe::core {
namespace {

using net::Ipv4Addr;
using net::Prefix;

class PortScanTest : public ::testing::Test {
 protected:
  PortScanTest() : net(loop), scanner(Rng(1)) {
    hub = net.add_router("hub", Ipv4Addr(10, 0, 0, 254));
    scanner_node = add_node(Ipv4Addr(10, 0, 0, 1), "scanner");
    open_router = net.add_router("bgp-router", Ipv4Addr(10, 0, 1, 1));
    wire(open_router);
    dark_router = net.add_router("dark-router", Ipv4Addr(10, 0, 2, 1));
    wire(dark_router);
    rst_host = add_node(Ipv4Addr(10, 0, 3, 1), "rst-host");

    // BGP service on the open router.
    services = std::make_unique<shadow::RouterServices>(Rng(2),
                                                        std::vector<std::uint16_t>{179});
    services->bind(net, open_router);
    // A host with a plain TCP stack: closed ports answer RST.
    rst_stack = std::make_unique<HostStack>(net, rst_host);
    net.set_handler(rst_host, rst_stack.get());

    scanner.bind(net, scanner_node, Ipv4Addr(10, 0, 0, 1));
  }

  struct HostStack : sim::DatagramHandler {
    HostStack(sim::Network& net, sim::NodeId node) : stack(net, node, Rng(3)) {}
    void on_datagram(sim::Network&, sim::NodeId, const net::Ipv4Datagram& dgram) override {
      if (dgram.header.protocol == net::IpProto::kTcp) stack.on_segment(dgram);
    }
    sim::TcpStack stack;
  };

  sim::NodeId add_node(Ipv4Addr addr, const std::string& name) {
    sim::NodeId node = net.add_host(name, addr, nullptr);
    wire(node);
    return node;
  }

  void wire(sim::NodeId node) {
    net.routes(node).set_default(hub);
    net.routes(hub).add(Prefix(net.address(node), 32), node);
  }

  sim::EventLoop loop;
  sim::Network net;
  PortScanner scanner;
  sim::NodeId hub, scanner_node, open_router, dark_router, rst_host;
  std::unique_ptr<shadow::RouterServices> services;
  std::unique_ptr<HostStack> rst_stack;
};

TEST_F(PortScanTest, ClassifiesOpenClosedAndFiltered) {
  scanner.scan({Ipv4Addr(10, 0, 1, 1), Ipv4Addr(10, 0, 2, 1), Ipv4Addr(10, 0, 3, 1)},
               {179, 22});
  loop.run();
  const auto& results = scanner.results();
  ASSERT_EQ(results.size(), 3u);
  // BGP router: 179 open, 22 closed (its stack RSTs unknown ports).
  EXPECT_EQ(results[0].ports.at(179), PortState::kOpen);
  EXPECT_EQ(results[0].ports.at(22), PortState::kClosed);
  EXPECT_TRUE(results[0].any_open());
  // Dark router: no handler at all -> silence -> filtered.
  EXPECT_EQ(results[1].ports.at(179), PortState::kFiltered);
  EXPECT_EQ(results[1].ports.at(22), PortState::kFiltered);
  EXPECT_FALSE(results[1].any_open());
  // Plain host: everything closed.
  EXPECT_EQ(results[2].ports.at(179), PortState::kClosed);
}

TEST_F(PortScanTest, SummaryFindsTopOpenPort) {
  scanner.scan({Ipv4Addr(10, 0, 1, 1), Ipv4Addr(10, 0, 2, 1), Ipv4Addr(10, 0, 3, 1)},
               PortScanner::default_ports());
  loop.run();
  auto summary = scanner.summarize();
  EXPECT_EQ(summary.targets, 3);
  EXPECT_EQ(summary.with_open_ports, 1);
  EXPECT_NEAR(summary.no_open_share(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(summary.top_open_port(), 179);
}

TEST_F(PortScanTest, EmptyScanSummary) {
  auto summary = scanner.summarize();
  EXPECT_EQ(summary.targets, 0);
  EXPECT_DOUBLE_EQ(summary.no_open_share(), 0.0);
  EXPECT_EQ(summary.top_open_port(), 0);
}

TEST_F(PortScanTest, DefaultPortsIncludeBgp) {
  const auto& ports = PortScanner::default_ports();
  EXPECT_NE(std::find(ports.begin(), ports.end(), 179), ports.end());
  EXPECT_GE(ports.size(), 10u);
}

}  // namespace
}  // namespace shadowprobe::core
