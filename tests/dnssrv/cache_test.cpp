#include "dnssrv/cache.h"

#include <gtest/gtest.h>

namespace shadowprobe::dnssrv {
namespace {

using net::DnsName;
using net::DnsRecord;
using net::DnsType;
using net::Ipv4Addr;

TEST(DnsCache, HitBeforeExpiryMissAfter) {
  DnsCache cache;
  DnsName name = DnsName::must_parse("x.example.com");
  cache.put(name, DnsType::kA, {DnsRecord::a(name, Ipv4Addr(1, 2, 3, 4), 60)}, 60, 0);
  auto hit = cache.get(name, DnsType::kA, 59 * kSecond);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->records.size(), 1u);
  EXPECT_FALSE(hit->negative);
  // Expiry boundary is exclusive: at exactly 60s the entry is gone.
  EXPECT_FALSE(cache.get(name, DnsType::kA, 60 * kSecond).has_value());
}

TEST(DnsCache, ExpiredEntriesAreEvictedOnAccess) {
  DnsCache cache;
  DnsName name = DnsName::must_parse("y.example.com");
  cache.put(name, DnsType::kA, {}, 1, 0);
  EXPECT_EQ(cache.size(), 1u);
  cache.get(name, DnsType::kA, 2 * kSecond);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCache, KeysAreNameAndType) {
  DnsCache cache;
  DnsName name = DnsName::must_parse("z.example.com");
  cache.put(name, DnsType::kA, {}, 100, 0);
  EXPECT_TRUE(cache.get(name, DnsType::kA, 0).has_value());
  EXPECT_FALSE(cache.get(name, DnsType::kTxt, 0).has_value());
  EXPECT_FALSE(cache.get(DnsName::must_parse("w.example.com"), DnsType::kA, 0).has_value());
}

TEST(DnsCache, NegativeEntriesCarryRcode) {
  DnsCache cache;
  DnsName name = DnsName::must_parse("nx.example.com");
  cache.put_negative(name, DnsType::kA, net::DnsRcode::kNxDomain, 300, 0);
  auto hit = cache.get(name, DnsType::kA, 100 * kSecond);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative);
  EXPECT_EQ(hit->rcode, net::DnsRcode::kNxDomain);
  EXPECT_TRUE(hit->records.empty());
}

TEST(DnsCache, OverwriteRefreshesEntry) {
  DnsCache cache;
  DnsName name = DnsName::must_parse("r.example.com");
  cache.put(name, DnsType::kA, {DnsRecord::a(name, Ipv4Addr(1, 1, 1, 1), 10)}, 10, 0);
  cache.put(name, DnsType::kA, {DnsRecord::a(name, Ipv4Addr(2, 2, 2, 2), 10)}, 10,
            5 * kSecond);
  auto hit = cache.get(name, DnsType::kA, 12 * kSecond);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(std::get<Ipv4Addr>(hit->records[0].rdata), Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCache, CaseInsensitiveNames) {
  DnsCache cache;
  cache.put(DnsName::must_parse("MiXeD.example.com"), DnsType::kA, {}, 100, 0);
  EXPECT_TRUE(cache.get(DnsName::must_parse("mixed.EXAMPLE.com"), DnsType::kA, 0).has_value());
}

TEST(DnsCache, ClearEmpties) {
  DnsCache cache;
  cache.put(DnsName::must_parse("a.b"), DnsType::kA, {}, 100, 0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace shadowprobe::dnssrv
