// ObliviousProxy end-to-end against a real testbed: the resolver answers,
// but attributes the query to the proxy instead of the client.
#include "dnssrv/oblivious.h"

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::dnssrv {
namespace {

class ObliviousTest : public ::testing::Test {
 protected:
  ObliviousTest() {
    core::TestbedConfig config;
    config.topology.seed = 31;
    config.topology.global_vps = 2;
    config.topology.cn_vps = 2;
    config.topology.web_sites = 2;
    bed = core::Testbed::create(config);
    client_node = bed->add_host_in_as(24940, "odoh-client", &client);
    client_addr = bed->net().address(client_node);
  }

  struct Client : sim::DatagramHandler {
    void on_datagram(sim::Network&, sim::NodeId, const net::Ipv4Datagram& dgram) override {
      if (dgram.header.protocol != net::IpProto::kUdp) return;
      auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                          dgram.header.dst);
      if (!udp.ok() || udp.value().src_port != kObliviousPort) return;
      auto inner = net::tls_opaque_unwrap(BytesView(udp.value().payload));
      if (!inner.ok()) return;
      auto dns = net::DnsMessage::decode(BytesView(inner.value()));
      if (dns.ok()) responses.push_back(dns.value());
    }
    std::vector<net::DnsMessage> responses;
  } client;

  std::unique_ptr<core::Testbed> bed;
  sim::NodeId client_node;
  net::Ipv4Addr client_addr;
};

TEST_F(ObliviousTest, RelaysQueryAndSealsAnswer) {
  // Ask Google for a decoy-style name through the proxy.
  core::DecoyId id;
  id.vp = client_addr;
  id.dst = net::Ipv4Addr(8, 8, 8, 8);
  id.seq = 5;
  net::DnsMessage query = net::DnsMessage::query(99, core::decoy_domain(id),
                                                 net::DnsType::kA);
  Bytes envelope = oblivious_envelope(net::Ipv4Addr(8, 8, 8, 8),
                                      BytesView(query.encode()));
  sim::send_udp(bed->net(), client_node, client_addr, bed->oblivious_proxy_addr(), 6000,
                kObliviousPort, BytesView(envelope));
  bed->loop().run_until(kMinute);

  // The client received a sealed, correct answer.
  ASSERT_EQ(client.responses.size(), 1u);
  EXPECT_EQ(client.responses[0].header.id, 99);
  ASSERT_FALSE(client.responses[0].answers.empty());

  // The honeypot's authoritative log attributes the recursion to Google's
  // egress (normal), and Google itself saw the *proxy* as its client:
  // the resolver-side observer hook proves the identity split.
  bool saw_client_addr = false;
  dnssrv::RecursiveResolver* google = bed->resolver("Google");
  ASSERT_NE(google, nullptr);
  EXPECT_EQ(google->client_queries(), 1u);
  for (const auto& hit : bed->logbook().hits()) {
    if (hit.origin == client_addr) saw_client_addr = true;
  }
  EXPECT_FALSE(saw_client_addr);
}

TEST_F(ObliviousTest, ResolverSeesProxyAsClient) {
  std::vector<net::Ipv4Addr> observed_clients;
  bed->resolver("Google")->add_client_query_observer(
      [&](const QueryLogEntry& entry) { observed_clients.push_back(entry.client); });

  net::DnsMessage query = net::DnsMessage::query(
      7, net::DnsName::must_parse("who-is-asking.www.shadowprobe-exp.com"),
      net::DnsType::kA);
  Bytes envelope = oblivious_envelope(net::Ipv4Addr(8, 8, 8, 8),
                                      BytesView(query.encode()));
  sim::send_udp(bed->net(), client_node, client_addr, bed->oblivious_proxy_addr(), 6001,
                kObliviousPort, BytesView(envelope));
  bed->loop().run_until(kMinute);

  ASSERT_EQ(observed_clients.size(), 1u);
  EXPECT_EQ(observed_clients[0], bed->oblivious_proxy_addr());
  EXPECT_NE(observed_clients[0], client_addr);
}

TEST_F(ObliviousTest, GarbageEnvelopesAreDropped) {
  sim::send_udp(bed->net(), client_node, client_addr, bed->oblivious_proxy_addr(), 6002,
                kObliviousPort, BytesView(to_bytes("not an envelope")));
  bed->loop().run_until(kMinute);
  EXPECT_TRUE(client.responses.empty());
  EXPECT_EQ(bed->resolver("Google")->client_queries(), 0u);
}

TEST_F(ObliviousTest, EnvelopeHidesQueryFromTheWire) {
  net::DnsMessage query = net::DnsMessage::query(
      7, net::DnsName::must_parse("hidden-name.www.shadowprobe-exp.com"), net::DnsType::kA);
  Bytes envelope = oblivious_envelope(net::Ipv4Addr(8, 8, 8, 8), BytesView(query.encode()));
  std::string raw = to_string(BytesView(envelope));
  EXPECT_EQ(raw.find("hidden-name"), std::string::npos);
}

}  // namespace
}  // namespace shadowprobe::dnssrv
