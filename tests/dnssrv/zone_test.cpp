#include "dnssrv/zone.h"

#include <gtest/gtest.h>

namespace shadowprobe::dnssrv {
namespace {

using net::DnsName;
using net::DnsRecord;
using net::DnsType;
using net::Ipv4Addr;

Zone make_zone() {
  Zone zone(DnsName::must_parse("example.com"));
  net::SoaData soa;
  soa.mname = DnsName::must_parse("ns1.example.com");
  soa.rname = DnsName::must_parse("admin.example.com");
  soa.minimum = 300;
  zone.add(DnsRecord::soa(DnsName::must_parse("example.com"), soa));
  zone.add(DnsRecord::a(DnsName::must_parse("www.example.com"), Ipv4Addr(1, 1, 1, 1)));
  zone.add(DnsRecord::a(DnsName::must_parse("www.example.com"), Ipv4Addr(1, 1, 1, 2)));
  zone.add(DnsRecord::txt(DnsName::must_parse("www.example.com"), {"v=1"}));
  // Wildcard under probe.example.com.
  zone.add(DnsRecord::a(DnsName::must_parse("*.probe.example.com"), Ipv4Addr(9, 9, 9, 9), 3600));
  // Delegation: sub.example.com -> ns.sub.example.com (with glue).
  zone.add(DnsRecord::ns(DnsName::must_parse("sub.example.com"),
                         DnsName::must_parse("ns.sub.example.com")));
  zone.add(DnsRecord::a(DnsName::must_parse("ns.sub.example.com"), Ipv4Addr(7, 7, 7, 7)));
  return zone;
}

TEST(Zone, ExactMatchReturnsAllRecordsOfType) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("www.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(Zone, NoDataForExistingNameMissingType) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("www.example.com"), DnsType::kNs);
  EXPECT_EQ(result.kind, LookupKind::kNoData);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, DnsType::kSoa);
}

TEST(Zone, NxDomainForUnknownName) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("nothere.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kNxDomain);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, DnsType::kSoa);
}

TEST(Zone, WildcardSynthesizesOwnerName) {
  Zone zone = make_zone();
  DnsName qname = DnsName::must_parse("anything-at-all.probe.example.com");
  auto result = zone.lookup(qname, DnsType::kA);
  ASSERT_EQ(result.kind, LookupKind::kAnswer);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].name, qname);  // synthesized owner
  EXPECT_EQ(std::get<Ipv4Addr>(result.answers[0].rdata), Ipv4Addr(9, 9, 9, 9));
  EXPECT_EQ(result.answers[0].ttl, 3600u);
}

TEST(Zone, WildcardMatchesDeepNames) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("a.b.c.probe.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
}

TEST(Zone, WildcardDoesNotOverrideExactMatch) {
  Zone zone = make_zone();
  zone.add(DnsRecord::a(DnsName::must_parse("fixed.probe.example.com"), Ipv4Addr(5, 5, 5, 5)));
  auto result = zone.lookup(DnsName::must_parse("fixed.probe.example.com"), DnsType::kA);
  ASSERT_EQ(result.kind, LookupKind::kAnswer);
  EXPECT_EQ(std::get<Ipv4Addr>(result.answers[0].rdata), Ipv4Addr(5, 5, 5, 5));
}

TEST(Zone, DelegationWinsBelowTheCut) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("deep.under.sub.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kDelegation);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, DnsType::kNs);
  // Glue present.
  ASSERT_EQ(result.additionals.size(), 1u);
  EXPECT_EQ(std::get<Ipv4Addr>(result.additionals[0].rdata), Ipv4Addr(7, 7, 7, 7));
}

TEST(Zone, QueryAtDelegationPointReturnsDelegation) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("sub.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kDelegation);
}

TEST(Zone, NamesOutsideZoneAreRejected) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("www.other.org"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kNotInZone);
}

TEST(Zone, AddOutsideOriginThrows) {
  Zone zone(DnsName::must_parse("example.com"));
  EXPECT_THROW(zone.add(DnsRecord::a(DnsName::must_parse("x.other.org"), Ipv4Addr())),
               std::invalid_argument);
}

TEST(Zone, EmptyNonTerminalIsNoDataNotNxDomain) {
  Zone zone = make_zone();
  // "probe.example.com" owns no records but has a descendant (the wildcard).
  auto result = zone.lookup(DnsName::must_parse("probe.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kNoData);
}

TEST(Zone, ApexLookupWorks) {
  Zone zone = make_zone();
  auto result = zone.lookup(DnsName::must_parse("example.com"), DnsType::kSoa);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
}

TEST(Zone, RootZoneDelegatesTlds) {
  Zone root{DnsName{}};
  root.add(DnsRecord::ns(DnsName::must_parse("com"), DnsName::must_parse("a.gtld.net")));
  root.add(DnsRecord::a(DnsName::must_parse("a.gtld.net"), Ipv4Addr(192, 12, 94, 30)));
  auto result = root.lookup(DnsName::must_parse("x.www.deep.example.com"), DnsType::kA);
  EXPECT_EQ(result.kind, LookupKind::kDelegation);
  ASSERT_EQ(result.additionals.size(), 1u);
}

}  // namespace
}  // namespace shadowprobe::dnssrv
