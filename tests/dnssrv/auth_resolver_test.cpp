// Integration of AuthoritativeServer + RecursiveResolver over a miniature
// DNS hierarchy: one root, one TLD, one zone authoritative, one resolver,
// one stub client — all exchanging real packets on a star network.
#include <gtest/gtest.h>

#include "dnssrv/auth_server.h"
#include "dnssrv/resolver.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::dnssrv {
namespace {

using net::DnsMessage;
using net::DnsName;
using net::DnsRcode;
using net::DnsRecord;
using net::DnsType;
using net::Ipv4Addr;
using net::Prefix;

constexpr Ipv4Addr kRootAddr(198, 41, 0, 4);
constexpr Ipv4Addr kTldAddr(192, 12, 94, 30);
constexpr Ipv4Addr kAuthAddr(20, 1, 0, 1);
constexpr Ipv4Addr kResolverAddr(8, 8, 8, 8);
constexpr Ipv4Addr kResolverEgress(8, 8, 8, 17);
constexpr Ipv4Addr kClientAddr(30, 1, 0, 1);

/// Stub client recording every DNS response it receives.
class StubClient : public sim::DatagramHandler {
 public:
  void on_datagram(sim::Network& net, sim::NodeId, const net::Ipv4Datagram& dgram) override {
    (void)net;
    if (dgram.header.protocol != net::IpProto::kUdp) return;
    auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                        dgram.header.dst);
    if (!udp.ok()) return;
    auto dns = DnsMessage::decode(BytesView(udp.value().payload));
    if (dns.ok()) responses.push_back(dns.value());
  }
  std::vector<DnsMessage> responses;
};

class ResolverWorld : public ::testing::Test {
 protected:
  ResolverWorld() : net(loop), resolver("test-resolver", {kRootAddr}, Rng(99)) {
    hub = net.add_router("hub", Ipv4Addr(10, 255, 0, 1));
    root_node = add_server(kRootAddr, "root");
    tld_node = add_server(kTldAddr, "tld");
    auth_node = add_server(kAuthAddr, "auth");
    resolver_node = add_server(kResolverAddr, "resolver");
    client_node = add_server(kClientAddr, "client");
    net.add_address(resolver_node, kResolverEgress);
    net.routes(hub).add(Prefix(kResolverEgress, 32), resolver_node);

    // Root zone: delegation of "com".
    Zone root_zone{DnsName{}};
    root_zone.add(DnsRecord::ns(DnsName::must_parse("com"),
                                DnsName::must_parse("a.gtld-servers.net")));
    root_zone.add(DnsRecord::a(DnsName::must_parse("a.gtld-servers.net"), kTldAddr));
    root.add_zone(std::move(root_zone));
    net.set_handler(root_node, &root);

    // TLD zone: delegation of "probe.com".
    Zone tld_zone(DnsName::must_parse("com"));
    tld_zone.add(DnsRecord::ns(DnsName::must_parse("probe.com"),
                               DnsName::must_parse("ns1.probe.com")));
    tld_zone.add(DnsRecord::a(DnsName::must_parse("ns1.probe.com"), kAuthAddr));
    tld.add_zone(std::move(tld_zone));
    net.set_handler(tld_node, &tld);

    // Authoritative zone with a wildcard (honeypot-style).
    Zone zone(DnsName::must_parse("probe.com"));
    net::SoaData soa;
    soa.mname = DnsName::must_parse("ns1.probe.com");
    soa.rname = DnsName::must_parse("root.probe.com");
    soa.minimum = 123;
    zone.add(DnsRecord::soa(DnsName::must_parse("probe.com"), soa));
    zone.add(DnsRecord::a(DnsName::must_parse("*.www.probe.com"), Ipv4Addr(42, 0, 0, 1), 3600));
    auth.add_zone(std::move(zone));
    auth.add_query_observer([this](const QueryLogEntry& entry) { auth_log.push_back(entry); });
    net.set_handler(auth_node, &auth);

    resolver.bind(net, resolver_node, kResolverAddr, kResolverEgress);
    net.set_handler(client_node, &client);
  }

  sim::NodeId add_server(Ipv4Addr addr, const std::string& name) {
    sim::NodeId node = net.add_host(name, addr, nullptr);
    net.routes(node).set_default(hub);
    net.routes(hub).add(Prefix(addr, 32), node);
    return node;
  }

  void client_query(const std::string& qname, std::uint16_t id = 77) {
    DnsMessage query = DnsMessage::query(id, DnsName::must_parse(qname), DnsType::kA);
    Bytes wire = query.encode();
    sim::send_udp(net, client_node, kClientAddr, kResolverAddr, 5353, 53, BytesView(wire));
  }

  sim::EventLoop loop;
  sim::Network net;
  sim::NodeId hub, root_node, tld_node, auth_node, resolver_node, client_node;
  AuthoritativeServer root, tld, auth;
  RecursiveResolver resolver;
  StubClient client;
  std::vector<QueryLogEntry> auth_log;
};

TEST_F(ResolverWorld, FullRecursionResolvesWildcard) {
  client_query("abc123.www.probe.com");
  loop.run();
  ASSERT_EQ(client.responses.size(), 1u);
  const DnsMessage& response = client.responses[0];
  EXPECT_EQ(response.header.id, 77);
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.ra);
  EXPECT_EQ(response.header.rcode, DnsRcode::kNoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<Ipv4Addr>(response.answers[0].rdata), Ipv4Addr(42, 0, 0, 1));
  // The authoritative server saw exactly one query, from the resolver's
  // egress address.
  ASSERT_EQ(auth_log.size(), 1u);
  EXPECT_EQ(auth_log[0].client, kResolverEgress);
  EXPECT_EQ(resolver.client_queries(), 1u);
  EXPECT_EQ(resolver.upstream_queries(), 3u);  // root, tld, auth
}

TEST_F(ResolverWorld, SecondQueryIsServedFromCache) {
  client_query("cachedname.www.probe.com", 1);
  loop.run();
  client_query("cachedname.www.probe.com", 2);
  loop.run();
  EXPECT_EQ(client.responses.size(), 2u);
  EXPECT_EQ(resolver.cache_hits(), 1u);
  EXPECT_EQ(resolver.upstream_queries(), 3u);  // no second recursion
  EXPECT_EQ(auth_log.size(), 1u);
}

TEST_F(ResolverWorld, CacheExpiresAfterTtl) {
  client_query("expiring.www.probe.com", 1);
  loop.run();
  // Jump past the record TTL (3600s) and ask again.
  loop.schedule(3700 * kSecond, [] {});
  loop.run();
  client_query("expiring.www.probe.com", 2);
  loop.run();
  EXPECT_EQ(resolver.cache_hits(), 0u);
  EXPECT_EQ(auth_log.size(), 2u);
}

TEST_F(ResolverWorld, NxDomainIsReturnedAndNegativelyCached) {
  client_query("nothing.elsewhere.probe.com", 1);
  loop.run();
  ASSERT_EQ(client.responses.size(), 1u);
  EXPECT_EQ(client.responses[0].header.rcode, DnsRcode::kNxDomain);
  client_query("nothing.elsewhere.probe.com", 2);
  loop.run();
  ASSERT_EQ(client.responses.size(), 2u);
  EXPECT_EQ(client.responses[1].header.rcode, DnsRcode::kNxDomain);
  EXPECT_EQ(resolver.cache_hits(), 1u);
}

TEST_F(ResolverWorld, UnreachableRootEndsInServfail) {
  RecursiveResolver lonely("lonely", {Ipv4Addr(203, 0, 113, 1)}, Rng(5));
  // 203.0.113.1 has no route: queries vanish, timeouts fire.
  Ipv4Addr service(20, 9, 0, 1);
  sim::NodeId node = add_server(service, "lonely");
  lonely.bind(net, node, service, service);
  DnsMessage query = DnsMessage::query(9, DnsName::must_parse("x.probe.com"), DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client_node, kClientAddr, service, 5353, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(client.responses.size(), 1u);
  EXPECT_EQ(client.responses[0].header.rcode, DnsRcode::kServFail);
  EXPECT_EQ(lonely.servfails(), 1u);
  // All attempts were spent.
  EXPECT_EQ(lonely.upstream_queries(),
            static_cast<std::uint64_t>(lonely.quirks().upstream_attempts));
}

TEST_F(ResolverWorld, RequeryQuirkProducesUnsolicitedDuplicates) {
  ResolverQuirks quirks;
  quirks.requery_probability = 1.0;
  quirks.requery_count = 2;
  quirks.requery_delay_mean = 10 * kSecond;
  resolver.set_quirks(quirks);
  client_query("zombie.www.probe.com");
  loop.run();
  // Initial resolution (1) plus two duplicate verification queries.
  EXPECT_EQ(auth_log.size(), 3u);
  for (const auto& entry : auth_log) {
    EXPECT_EQ(entry.question.name, DnsName::must_parse("zombie.www.probe.com"));
  }
  // Duplicates arrive shortly after, not instantly.
  EXPECT_GT(auth_log[1].time, auth_log[0].time);
}

TEST_F(ResolverWorld, RefreshOnExpiryReResolves) {
  ResolverQuirks quirks;
  quirks.refresh_on_expiry = true;
  resolver.set_quirks(quirks);
  client_query("refresh.www.probe.com");
  loop.run_until(3700 * kSecond);
  // Original resolution + at least one TTL-aligned refresh.
  EXPECT_GE(auth_log.size(), 2u);
  EXPECT_GE(auth_log[1].time, 3600 * kSecond);
}

TEST_F(ResolverWorld, QueryObserverSeesClientAddress) {
  std::vector<QueryLogEntry> observed;
  resolver.add_client_query_observer(
      [&](const QueryLogEntry& entry) { observed.push_back(entry); });
  client_query("watched.www.probe.com");
  loop.run();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].client, kClientAddr);
  EXPECT_EQ(observed[0].server_addr, kResolverAddr);
}

TEST_F(ResolverWorld, AuthServesDirectQueriesAndRefusesForeignZones) {
  DnsMessage query = DnsMessage::query(3, DnsName::must_parse("a.www.probe.com"),
                                       DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client_node, kClientAddr, kAuthAddr, 5353, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(client.responses.size(), 1u);
  EXPECT_TRUE(client.responses[0].header.aa);

  DnsMessage foreign = DnsMessage::query(4, DnsName::must_parse("x.unrelated.net"),
                                         DnsType::kA);
  wire = foreign.encode();
  sim::send_udp(net, client_node, kClientAddr, kAuthAddr, 5353, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(client.responses.size(), 2u);
  EXPECT_EQ(client.responses[1].header.rcode, DnsRcode::kRefused);
  EXPECT_EQ(auth.queries_refused(), 1u);
}

}  // namespace
}  // namespace shadowprobe::dnssrv

namespace shadowprobe::dnssrv {
namespace {

TEST_F(ResolverWorld, EncryptedDnsResolvesAndAnswersSealed) {
  // Client query wrapped as an opaque session record to port 853.
  net::DnsMessage query = net::DnsMessage::query(21, net::DnsName::must_parse(
                                                         "enc.www.probe.com"),
                                                 net::DnsType::kA);
  Bytes sealed = net::tls_opaque_record(BytesView(query.encode()));
  sim::send_udp(net, client_node, kClientAddr, kResolverAddr, 5454, kEncryptedDnsPort,
                BytesView(sealed));
  loop.run();
  // The resolver resolved normally: honeypot-style auth saw the recursion.
  ASSERT_EQ(auth_log.size(), 1u);
  // The client's StubClient does not unwrap opaque records, so verify the
  // sealed response arrived by resolver accounting instead.
  EXPECT_EQ(resolver.client_queries(), 1u);
  EXPECT_EQ(resolver.servfails(), 0u);
}

TEST_F(ResolverWorld, EncryptedPortRejectsPlainPayloads) {
  net::DnsMessage query = net::DnsMessage::query(22, net::DnsName::must_parse(
                                                         "plain.www.probe.com"),
                                                 net::DnsType::kA);
  Bytes wire = query.encode();  // NOT sealed
  sim::send_udp(net, client_node, kClientAddr, kResolverAddr, 5454, kEncryptedDnsPort,
                BytesView(wire));
  loop.run();
  EXPECT_EQ(resolver.client_queries(), 0u);
  EXPECT_TRUE(auth_log.empty());
}

}  // namespace
}  // namespace shadowprobe::dnssrv

namespace shadowprobe::dnssrv {
namespace {

TEST_F(ResolverWorld, EdnsAdvertisedUpstreamAndEchoedByAuth) {
  // Directly query the authoritative with EDNS: the response carries OPT.
  net::DnsMessage query = net::DnsMessage::query(
      31, net::DnsName::must_parse("edns.www.probe.com"), net::DnsType::kA);
  query.edns = net::EdnsInfo{.udp_payload_size = 4096};
  Bytes wire = query.encode();
  sim::send_udp(net, client_node, kClientAddr, kAuthAddr, 5555, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(client.responses.size(), 1u);
  EXPECT_TRUE(client.responses[0].edns.has_value());

  // A plain (EDNS-less) query draws a plain answer.
  net::DnsMessage plain = net::DnsMessage::query(
      32, net::DnsName::must_parse("plain.www.probe.com"), net::DnsType::kA);
  wire = plain.encode();
  sim::send_udp(net, client_node, kClientAddr, kAuthAddr, 5556, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(client.responses.size(), 2u);
  EXPECT_FALSE(client.responses[1].edns.has_value());
}

}  // namespace
}  // namespace shadowprobe::dnssrv
