#include "intel/blocklist.h"

#include <gtest/gtest.h>

namespace shadowprobe::intel {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(Blocklist, ExplicitAddresses) {
  Blocklist list;
  list.add(Ipv4Addr(1, 2, 3, 4));
  EXPECT_TRUE(list.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(list.contains(Ipv4Addr(1, 2, 3, 5)));
  EXPECT_EQ(list.entry_count(), 1u);
}

TEST(Blocklist, PrefixEntries) {
  Blocklist list;
  list.add(Prefix(Ipv4Addr(5, 5, 0, 0), 16));
  EXPECT_TRUE(list.contains(Ipv4Addr(5, 5, 200, 1)));
  EXPECT_FALSE(list.contains(Ipv4Addr(5, 6, 0, 1)));
}

TEST(Blocklist, HitRate) {
  Blocklist list;
  list.add(Ipv4Addr(9, 0, 0, 1));
  list.add(Ipv4Addr(9, 0, 0, 2));
  std::vector<Ipv4Addr> sample = {Ipv4Addr(9, 0, 0, 1), Ipv4Addr(9, 0, 0, 2),
                                  Ipv4Addr(9, 0, 0, 3), Ipv4Addr(9, 0, 0, 4)};
  EXPECT_DOUBLE_EQ(list.hit_rate(sample), 0.5);
  EXPECT_DOUBLE_EQ(list.hit_rate({}), 0.0);
}

TEST(Blocklist, EmptyListMatchesNothing) {
  Blocklist list;
  EXPECT_FALSE(list.contains(Ipv4Addr(1, 1, 1, 1)));
  EXPECT_EQ(list.entry_count(), 0u);
}

}  // namespace
}  // namespace shadowprobe::intel
