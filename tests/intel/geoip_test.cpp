#include "intel/geoip.h"

#include <gtest/gtest.h>

namespace shadowprobe::intel {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(GeoDatabase, LongestPrefixWins) {
  GeoDatabase db;
  db.add(Prefix(Ipv4Addr(114, 0, 0, 0), 8), {"CN", "", 4134, "CHINANET-BACKBONE", PrefixType::kIsp});
  db.add(Prefix(Ipv4Addr(114, 114, 0, 0), 16), {"CN", "Jiangsu", 64512, "114DNS operations", PrefixType::kHosting});
  auto coarse = db.lookup(Ipv4Addr(114, 1, 1, 1));
  ASSERT_TRUE(coarse.has_value());
  EXPECT_EQ(coarse->asn, 4134u);
  auto fine = db.lookup(Ipv4Addr(114, 114, 114, 114));
  ASSERT_TRUE(fine.has_value());
  EXPECT_EQ(fine->asn, 64512u);
  EXPECT_EQ(fine->subdivision, "Jiangsu");
}

TEST(GeoDatabase, MissReturnsNulloptAndFallbacks) {
  GeoDatabase db;
  db.add(Prefix(Ipv4Addr(10, 0, 0, 0), 8), {"US", "", 1, "TEN-NET", PrefixType::kHosting});
  EXPECT_FALSE(db.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
  EXPECT_EQ(db.country(Ipv4Addr(11, 0, 0, 1)), "??");
  EXPECT_EQ(db.asn(Ipv4Addr(11, 0, 0, 1)), 0u);
  EXPECT_EQ(db.as_name(Ipv4Addr(11, 0, 0, 1)), "UNKNOWN");
  EXPECT_EQ(db.country(Ipv4Addr(10, 1, 1, 1)), "US");
}

TEST(GeoDatabase, ReRegistrationRefines) {
  GeoDatabase db;
  db.add(Prefix(Ipv4Addr(20, 0, 0, 0), 16), {"DE", "", 5, "A", PrefixType::kIsp});
  db.add(Prefix(Ipv4Addr(20, 0, 0, 0), 16), {"FR", "", 6, "B", PrefixType::kIsp});
  auto entry = db.lookup(Ipv4Addr(20, 0, 1, 1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->country, "FR");
  EXPECT_EQ(db.size(), 1u);
}

TEST(GeoDatabase, HostRoutesSupported) {
  GeoDatabase db;
  db.add(Prefix(Ipv4Addr(8, 8, 8, 8), 32), {"US", "", 15169, "Google LLC", PrefixType::kHosting});
  EXPECT_EQ(db.asn(Ipv4Addr(8, 8, 8, 8)), 15169u);
  EXPECT_EQ(db.asn(Ipv4Addr(8, 8, 8, 9)), 0u);
}

TEST(PrefixTypeName, AllValues) {
  EXPECT_EQ(prefix_type_name(PrefixType::kIsp), "isp");
  EXPECT_EQ(prefix_type_name(PrefixType::kHosting), "hosting");
  EXPECT_EQ(prefix_type_name(PrefixType::kUnknown), "unknown");
}

}  // namespace
}  // namespace shadowprobe::intel
