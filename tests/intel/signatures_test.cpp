#include "intel/signatures.h"

#include <gtest/gtest.h>

namespace shadowprobe::intel {
namespace {

class PayloadClassification
    : public ::testing::TestWithParam<std::pair<const char*, PayloadClass>> {};

TEST_P(PayloadClassification, ClassifiesTarget) {
  SignatureDb db = SignatureDb::standard();
  auto [target, expected] = GetParam();
  EXPECT_EQ(db.classify_target(target), expected) << target;
}

INSTANTIATE_TEST_SUITE_P(
    Targets, PayloadClassification,
    ::testing::Values(
        std::make_pair("/", PayloadClass::kBenignFetch),
        std::make_pair("/index.html", PayloadClass::kBenignFetch),
        std::make_pair("/favicon.ico", PayloadClass::kBenignFetch),
        std::make_pair("/robots.txt", PayloadClass::kBenignFetch),
        std::make_pair("/admin", PayloadClass::kPathEnumeration),
        std::make_pair("/wp-login.php", PayloadClass::kPathEnumeration),
        std::make_pair("/.git/config", PayloadClass::kPathEnumeration),
        std::make_pair("/.env", PayloadClass::kPathEnumeration),
        std::make_pair("/backup.zip", PayloadClass::kPathEnumeration),
        std::make_pair("/ADMIN", PayloadClass::kPathEnumeration),  // case-folded
        std::make_pair("/../../etc/passwd", PayloadClass::kExploitAttempt),
        std::make_pair("/?q=%27%20union%20select", PayloadClass::kOther),
        std::make_pair("/?q=' or 1=1", PayloadClass::kExploitAttempt),
        std::make_pair("/x?p=${jndi:ldap://evil}", PayloadClass::kExploitAttempt),
        std::make_pair("/random-page", PayloadClass::kOther),
        std::make_pair("/blog/post/42", PayloadClass::kOther)));

TEST(SignatureDb, ExploitInBodyDetected) {
  SignatureDb db = SignatureDb::standard();
  EXPECT_EQ(db.classify_target("/upload", "data=<script>alert(1)</script>"),
            PayloadClass::kExploitAttempt);
}

TEST(SignatureDb, ClassifyParsedRequest) {
  SignatureDb db = SignatureDb::standard();
  net::HttpRequest request;
  request.target = "/phpmyadmin/";
  EXPECT_EQ(db.classify(request), PayloadClass::kPathEnumeration);
}

TEST(SignatureDb, ExploitBeatsEnumerationWhenBothMatch) {
  SignatureDb db = SignatureDb::standard();
  EXPECT_EQ(db.classify_target("/admin/../../etc/passwd"), PayloadClass::kExploitAttempt);
}

TEST(SignatureDb, CustomEntriesExtendTheDatabase) {
  SignatureDb db;
  db.add_enumeration_path("/custom-scan");
  db.add_exploit_signature("EVIL-MARKER");
  EXPECT_EQ(db.classify_target("/custom-scan/deep"), PayloadClass::kPathEnumeration);
  EXPECT_EQ(db.classify_target("/x?p=evil-marker"), PayloadClass::kExploitAttempt);
  EXPECT_EQ(db.classify_target("/admin"), PayloadClass::kOther);  // not in custom db
}

TEST(SignatureDb, EnumerationWordlistNonEmpty) {
  SignatureDb db = SignatureDb::standard();
  EXPECT_GE(db.enumeration_paths().size(), 20u);
}

TEST(PayloadClassName, AllValues) {
  EXPECT_EQ(payload_class_name(PayloadClass::kBenignFetch), "benign-fetch");
  EXPECT_EQ(payload_class_name(PayloadClass::kPathEnumeration), "path-enumeration");
  EXPECT_EQ(payload_class_name(PayloadClass::kExploitAttempt), "exploit-attempt");
  EXPECT_EQ(payload_class_name(PayloadClass::kOther), "other");
}

}  // namespace
}  // namespace shadowprobe::intel
