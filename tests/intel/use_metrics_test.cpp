#include "intel/use_metrics.h"

#include <gtest/gtest.h>

namespace shadowprobe::intel {
namespace {

TEST(UseMetrics, GoogleLeadsAndSharesAreSane) {
  const auto& metrics = resolver_use_metrics();
  ASSERT_EQ(metrics.size(), 20u);  // the paper's 20 public resolvers
  EXPECT_EQ(metrics.front().name, "Google");
  double total = 0;
  for (const auto& m : metrics) {
    EXPECT_GT(m.world_share, 0.0);
    EXPECT_LT(m.world_share, 1.0);
    EXPECT_GE(metrics.front().world_share, m.world_share);
    total += m.world_share;
  }
  EXPECT_LT(total, 1.0);  // shares are fractions of world population
}

TEST(UseMetrics, LookupByName) {
  EXPECT_GT(resolver_share("Google"), resolver_share("Quad9"));
  EXPECT_EQ(resolver_share("not-a-resolver"), 0.0);
}

}  // namespace
}  // namespace shadowprobe::intel
