#include "common/stats.h"

#include <gtest/gtest.h>

namespace shadowprobe {
namespace {

TEST(Cdf, EmptyIsZeroEverywhere) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(123.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_EQ(cdf.mean(), 0.0);
}

TEST(Cdf, AtComputesInclusiveFraction) {
  Cdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, QuantileNearestRank) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_NEAR(cdf.quantile(0.5), 51.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(Cdf, MinMaxMean) {
  Cdf cdf;
  cdf.add(10);
  cdf.add(-4);
  cdf.add(6);
  EXPECT_DOUBLE_EQ(cdf.min(), -4.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 10.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 4.0);
}

TEST(Cdf, InterleavedAddAndQuery) {
  Cdf cdf;
  cdf.add(1);
  EXPECT_DOUBLE_EQ(cdf.at(1), 1.0);
  cdf.add(3);  // re-dirties after a query
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.5);
}

TEST(Cdf, SeriesIsMonotone) {
  Cdf cdf;
  for (int i = 0; i < 50; ++i) cdf.add(i * i);
  auto series = cdf.series(10);
  ASSERT_EQ(series.size(), 10u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Counter, SharesAndTotals) {
  Counter<std::string> counter;
  counter.add("a", 3);
  counter.add("b");
  counter.add("a");
  EXPECT_EQ(counter.total(), 5u);
  EXPECT_EQ(counter.get("a"), 4u);
  EXPECT_EQ(counter.get("missing"), 0u);
  EXPECT_DOUBLE_EQ(counter.share("a"), 0.8);
  EXPECT_DOUBLE_EQ(counter.share("missing"), 0.0);
  EXPECT_EQ(counter.distinct(), 2u);
}

TEST(Counter, TopOrdersByCountThenKey) {
  Counter<std::string> counter;
  counter.add("x", 2);
  counter.add("y", 5);
  counter.add("z", 2);
  auto top = counter.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "y");
  EXPECT_EQ(top[1].first, "x");  // tie broken by key order (stable sort)
}

TEST(Counter, EmptyShareIsZero) {
  Counter<int> counter;
  EXPECT_DOUBLE_EQ(counter.share(1), 0.0);
  EXPECT_TRUE(counter.top(5).empty());
}

TEST(BucketHistogram, BucketBoundaries) {
  BucketHistogram h({10.0, 100.0});
  h.add(5);     // bucket 0: < 10
  h.add(10);    // bucket 1: [10, 100)
  h.add(99.9);  // bucket 1
  h.add(100);   // bucket 2: >= 100
  h.add(1e9);   // bucket 2
  EXPECT_EQ(h.buckets(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.share(1), 0.4);
}

TEST(BucketHistogram, Labels) {
  BucketHistogram h({1.0, 60.0});
  EXPECT_EQ(h.label(0), "< 1");
  EXPECT_EQ(h.label(1), "[1, 60)");
  EXPECT_EQ(h.label(2), ">= 60");
}

}  // namespace
}  // namespace shadowprobe
