// Coverage for the small utilities: Result, logging levels.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/log.h"

namespace shadowprobe {
namespace {

TEST(ResultType, ValueAndErrorAccess) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_TRUE(static_cast<bool>(ok_result));
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_THROW((void)ok_result.error(), std::logic_error);

  Result<int> bad_result(Error("boom"));
  EXPECT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.error().message, "boom");
  EXPECT_THROW((void)bad_result.value(), std::logic_error);
}

TEST(ResultType, TakeMovesOutOfRvalue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).take();
  EXPECT_EQ(taken, "payload");
  Result<std::string> bad(Error("x"));
  EXPECT_THROW((void)std::move(bad).take(), std::logic_error);
}

TEST(ResultType, MutableValueAccess) {
  Result<std::vector<int>> result(std::vector<int>{1});
  result.value().push_back(2);
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(Logging, LevelGateIsRespected) {
  LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  // No way to capture stderr portably here; the contract under test is the
  // level round-trip and that logging below the gate is a no-op call.
  log_message(LogLevel::kDebug, "must not crash");
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(before);
}

}  // namespace
}  // namespace shadowprobe
