#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace shadowprobe {
namespace {

TEST(FlatMap, InsertFindContains) {
  FlatMap<std::uint32_t, std::string> map;
  EXPECT_TRUE(map.empty());
  map[7] = "seven";
  map[42] = "forty-two";
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), "seven");
  EXPECT_TRUE(map.contains(42));
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_EQ(map.count(42), 1u);
  EXPECT_EQ(map.count(1), 0u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<int, int> map;
  EXPECT_EQ(map[5], 0);
  map[5] += 3;
  EXPECT_EQ(map.at(5), 3);
}

TEST(FlatMap, EmplaceKeepsFirst) {
  FlatMap<int, std::string> map;
  auto [first, inserted] = map.emplace(1, "first");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*first, "first");
  auto [second, inserted_again] = map.emplace(1, "second");
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*second, "first");
}

TEST(FlatMap, InsertOrAssignOverwrites) {
  FlatMap<int, std::string> map;
  map.insert_or_assign(1, "one");
  map.insert_or_assign(1, "uno");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(1), "uno");
}

TEST(FlatMap, AtThrowsOnMissingKey) {
  FlatMap<int, int> map;
  map[1] = 10;
  EXPECT_EQ(map.at(1), 10);
  EXPECT_THROW((void)map.at(2), std::out_of_range);
}

TEST(FlatMap, EraseReturnsCount) {
  FlatMap<int, int> map;
  map[1] = 10;
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.erase(1), 0u);
  EXPECT_EQ(map.erase(99), 0u);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, GrowthPreservesAllEntries) {
  FlatMap<std::uint32_t, std::uint32_t> map;
  constexpr std::uint32_t kCount = 10000;
  for (std::uint32_t i = 0; i < kCount; ++i) map[i] = i * 3;
  EXPECT_EQ(map.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const std::uint32_t* v = map.find(i);
    ASSERT_NE(v, nullptr) << "key " << i << " lost during growth";
    EXPECT_EQ(*v, i * 3);
  }
}

TEST(FlatMap, ReservePreventsRehashUpToRequestedSize) {
  FlatMap<int, int> map;
  map.reserve(100);
  map[0] = 0;
  int* stable = map.find(0);
  ASSERT_NE(stable, nullptr);
  for (int i = 1; i < 100; ++i) map[i] = i;
  // No rehash happened within the reserved size, so the pointer is intact.
  EXPECT_EQ(map.find(0), stable);
  EXPECT_EQ(*stable, 0);
}

// Forces heavy clustering (all keys share 4 home buckets) so erase's
// backward-shift deletion has long probe chains to repair.
struct Mod4Hash {
  std::uint64_t operator()(int key) const noexcept {
    return static_cast<std::uint64_t>(key % 4);
  }
};

TEST(FlatMap, BackwardShiftEraseKeepsProbeChainsIntact) {
  FlatMap<int, int, Mod4Hash> map;
  for (int i = 0; i < 48; ++i) map[i] = i;
  // Erase every third key, including chain heads and middles.
  for (int i = 0; i < 48; i += 3) EXPECT_EQ(map.erase(i), 1u);
  for (int i = 0; i < 48; ++i) {
    if (i % 3 == 0) {
      EXPECT_FALSE(map.contains(i)) << i;
    } else {
      const int* v = map.find(i);
      ASSERT_NE(v, nullptr) << "key " << i << " unreachable after backward-shift";
      EXPECT_EQ(*v, i);
    }
  }
}

TEST(FlatMap, RandomizedChurnMatchesStdMap) {
  FlatMap<std::uint32_t, std::uint64_t> flat;
  std::map<std::uint32_t, std::uint64_t> reference;
  Rng rng(20240301);
  for (int step = 0; step < 20000; ++step) {
    std::uint32_t key = static_cast<std::uint32_t>(rng.below(512));
    if (rng.chance(0.4)) {
      flat.erase(key);
      reference.erase(key);
    } else {
      std::uint64_t value = rng.bits();
      flat.insert_or_assign(key, value);
      reference[key] = value;
    }
  }
  ASSERT_EQ(flat.size(), reference.size());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items = flat.sorted_items();
  std::vector<std::pair<std::uint32_t, std::uint64_t>> expected(reference.begin(),
                                                                reference.end());
  EXPECT_EQ(items, expected);
}

TEST(FlatMap, TableOrderIsAFunctionOfOperationSequence) {
  // Determinism contract: two maps fed the same insert/erase sequence
  // present the same for_each order (platform- and run-independent).
  FlatMap<std::uint32_t, int> a;
  FlatMap<std::uint32_t, int> b;
  for (std::uint32_t i = 0; i < 200; ++i) {
    a[i * 7 + 1] = static_cast<int>(i);
    b[i * 7 + 1] = static_cast<int>(i);
  }
  for (std::uint32_t i = 0; i < 200; i += 2) {
    a.erase(i * 7 + 1);
    b.erase(i * 7 + 1);
  }
  std::vector<std::uint32_t> order_a;
  std::vector<std::uint32_t> order_b;
  a.for_each([&order_a](std::uint32_t key, int) { order_a.push_back(key); });
  b.for_each([&order_b](std::uint32_t key, int) { order_b.push_back(key); });
  EXPECT_EQ(order_a, order_b);
}

TEST(FlatMap, SortedItemsAscending) {
  FlatMap<int, int> map;
  for (int key : {9, 2, 7, 1, 8}) map[key] = key * 10;
  auto items = map.sorted_items();
  ASSERT_EQ(items.size(), 5u);
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].first, items[i].first);
  }
}

TEST(FlatMap, PairKeys) {
  FlatMap<std::pair<std::uint32_t, std::uint16_t>, int> map;
  map[{10, 20}] = 1;
  map[{10, 21}] = 2;
  map[{11, 20}] = 3;
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.at({10, 21}), 2);
  EXPECT_EQ(map.erase({10, 20}), 1u);
  EXPECT_FALSE(map.contains({10, 20}));
  EXPECT_TRUE(map.contains({11, 20}));
}

struct DigestKey {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  bool operator==(const DigestKey&) const = default;
  [[nodiscard]] std::uint64_t flat_hash() const noexcept {
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }
};

TEST(FlatMap, FlatHashMemberHook) {
  FlatMap<DigestKey, int> map;
  map[DigestKey{1, 2}] = 12;
  map[DigestKey{2, 1}] = 21;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(DigestKey{1, 2}), 12);
  EXPECT_EQ(map.at(DigestKey{2, 1}), 21);
}

TEST(FlatSet, InsertEraseContains) {
  FlatSet<std::uint32_t> set;
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));  // duplicate
  EXPECT_TRUE(set.insert(6));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.count(6), 1u);
  EXPECT_EQ(set.erase(5), 1u);
  EXPECT_EQ(set.erase(5), 0u);
  EXPECT_FALSE(set.contains(5));
}

TEST(FlatSet, ForEachVisitsEveryKeyOnce) {
  FlatSet<int> set;
  for (int i = 0; i < 100; ++i) set.insert(i);
  std::vector<bool> seen(100, false);
  std::size_t visits = 0;
  set.for_each([&](int key) {
    ASSERT_GE(key, 0);
    ASSERT_LT(key, 100);
    EXPECT_FALSE(seen[static_cast<std::size_t>(key)]);
    seen[static_cast<std::size_t>(key)] = true;
    ++visits;
  });
  EXPECT_EQ(visits, 100u);
}

TEST(FlatSet, SortedKeysAscending) {
  FlatSet<int> set;
  for (int key : {42, 3, 17, 8}) set.insert(key);
  std::vector<int> keys = set.sorted_keys();
  EXPECT_EQ(keys, (std::vector<int>{3, 8, 17, 42}));
}

}  // namespace
}  // namespace shadowprobe
