#include "common/time.h"

#include <gtest/gtest.h>

namespace shadowprobe {
namespace {

TEST(SimTime, UnitRelationships) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(SimTime, SecondsConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kDay), 86400.0);
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_EQ(from_seconds(to_seconds(42 * kMinute)), 42 * kMinute);
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(3 * kMillisecond), "3ms");
  EXPECT_EQ(format_duration(5 * kSecond), "5s");
  EXPECT_EQ(format_duration(kMinute + 30 * kSecond), "1m 30s");
  EXPECT_EQ(format_duration(2 * kHour + 5 * kMinute), "2h 5m");
  EXPECT_EQ(format_duration(3 * kDay + 4 * kHour), "3d 4h");
}

TEST(FormatDuration, NegativeDurations) {
  EXPECT_EQ(format_duration(-5 * kSecond), "-5s");
}

}  // namespace
}  // namespace shadowprobe
