#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace shadowprobe {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.fork("alpha");
  Rng child2 = parent2.fork("alpha");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.bits(), child2.bits());

  Rng parent3(7);
  Rng other = parent3.fork("beta");
  Rng again = Rng(7).fork("alpha");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (other.bits() == again.bits()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(rng.range(3, 3), 3);
  EXPECT_EQ(rng.range(5, 1), 5);  // degenerate collapses to lo
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgesAreExact) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, LognormalMedianApproximatelyCorrect) {
  Rng rng(10);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal(100.0, 1.0));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 100.0, 10.0);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeightedSelectsByWeight) {
  Rng rng(12);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[1] / 10000.0, 0.9, 0.03);
}

TEST(Rng, WeightedDegenerateFallsBack) {
  Rng rng(13);
  EXPECT_EQ(rng.weighted({0.0, 0.0}), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Fnv1a, KnownVectorsAndDistinctness) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace shadowprobe
