#include "common/strutil.h"

#include <gtest/gtest.h>

namespace shadowprobe {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split(".", '.'), (std::vector<std::string>{"", ""}));
}

TEST(Join, InverseOfSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC123-Z"), "abc123-z");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Host", "hOST"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("host", "hosts"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(ParseUint, ValidAndInvalid) {
  EXPECT_EQ(parse_uint("0"), 0);
  EXPECT_EQ(parse_uint("12345"), 12345);
  EXPECT_EQ(parse_uint(""), -1);
  EXPECT_EQ(parse_uint("-1"), -1);
  EXPECT_EQ(parse_uint("12x"), -1);
  EXPECT_EQ(parse_uint(" 1"), -1);
  // Value near int64 max parses; overflow is rejected.
  EXPECT_EQ(parse_uint("9223372036854775807"), 9223372036854775807LL);
  EXPECT_EQ(parse_uint("9223372036854775808"), -1);
}

TEST(StrPrintf, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(strprintf("plain"), "plain");
}

}  // namespace
}  // namespace shadowprobe
