#include "common/base32.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace shadowprobe {
namespace {

TEST(Base32, EmptyInput) {
  EXPECT_EQ(base32_encode({}), "");
  auto decoded = base32_decode("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Base32, Rfc4648Vectors) {
  // RFC 4648 test vectors (lowercased, unpadded).
  EXPECT_EQ(base32_encode(to_bytes("f")), "my");
  EXPECT_EQ(base32_encode(to_bytes("fo")), "mzxq");
  EXPECT_EQ(base32_encode(to_bytes("foo")), "mzxw6");
  EXPECT_EQ(base32_encode(to_bytes("foob")), "mzxw6yq");
  EXPECT_EQ(base32_encode(to_bytes("fooba")), "mzxw6ytb");
  EXPECT_EQ(base32_encode(to_bytes("foobar")), "mzxw6ytboi");
}

TEST(Base32, DecodeAcceptsUppercase) {
  auto decoded = base32_decode("MZXW6YTBOI");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(to_string(BytesView(*decoded)), "foobar");
}

TEST(Base32, RejectsInvalidCharacters) {
  EXPECT_FALSE(base32_decode("mzxw6yt1").has_value());  // '1' not in alphabet
  EXPECT_FALSE(base32_decode("mzxw-6yt").has_value());
  EXPECT_FALSE(base32_decode("m z").has_value());
}

TEST(Base32, RejectsImpossibleLengths) {
  // Lengths 1, 3, 6 mod 8 cannot arise from whole bytes.
  EXPECT_FALSE(base32_decode("a").has_value());
  EXPECT_FALSE(base32_decode("abc").has_value());
  EXPECT_FALSE(base32_decode("abcdef").has_value());
}

TEST(Base32, RejectsNonzeroPaddingBits) {
  // "mz" decodes to 1 byte with 2 leftover bits; those bits must be zero.
  // 'z' = 25 = 0b11001 -> leftover bits 01 != 0 for crafted input "mb"?
  // Construct explicitly: encode {0xFF} -> "74"; tamper the final char so
  // the leftover bits become nonzero.
  std::string good = base32_encode(Bytes{0xFF});
  ASSERT_EQ(good.size(), 2u);
  std::string bad = good;
  bad[1] = 'z';  // 'z'=25=0b11001, leftover 001 pattern non-zero
  auto decoded = base32_decode(bad);
  EXPECT_FALSE(decoded.has_value());
}

class Base32RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base32RoundTrip, RandomBuffersSurvive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  for (int round = 0; round < 50; ++round) {
    Bytes data(static_cast<std::size_t>(GetParam()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits());
    std::string encoded = base32_encode(BytesView(data));
    // DNS-label-safe alphabet only.
    for (char c : encoded) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << c;
    }
    auto decoded = base32_decode(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base32RoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 31, 64));

}  // namespace
}  // namespace shadowprobe
