#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace shadowprobe {
namespace {

TEST(BumpArena, StoreReturnsStableViews) {
  BumpArena arena;
  std::string_view a = arena.store("alpha");
  std::string_view b = arena.store("beta");
  EXPECT_EQ(a, "alpha");
  EXPECT_EQ(b, "beta");
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(arena.allocations(), 2u);
}

TEST(BumpArena, AllocateRespectsAlignment) {
  BumpArena arena;
  (void)arena.allocate(1, 1);  // misalign the cursor on purpose
  void* p = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
}

TEST(BumpArena, SpillsIntoNewChunksAndViewsStayValid) {
  BumpArena arena(64);  // tiny chunks force spills quickly
  std::vector<std::string_view> views;
  for (int i = 0; i < 100; ++i) {
    views.push_back(arena.store("payload-" + std::to_string(i)));
  }
  EXPECT_GT(arena.allocated_chunks(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)], "payload-" + std::to_string(i));
  }
}

TEST(BumpArena, OversizedAllocationGetsItsOwnChunk) {
  BumpArena arena(32);
  void* big = arena.allocate(1000, 1);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 1000);  // must be fully usable
}

TEST(BumpArena, ResetRecyclesCapacity) {
  BumpArena arena(64);
  for (int i = 0; i < 50; ++i) (void)arena.store("some-longer-payload-text");
  std::size_t chunks_before = arena.allocated_chunks();
  arena.reset();
  EXPECT_EQ(arena.allocations(), 0u);
  for (int i = 0; i < 50; ++i) (void)arena.store("some-longer-payload-text");
  // Same workload after reset reuses the chunk list instead of growing it.
  EXPECT_EQ(arena.allocated_chunks(), chunks_before);
}

TEST(BufferPool, AcquireFromEmptyPoolIsFresh) {
  BufferPool pool;
  Bytes buf = pool.acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPool, ReleaseThenAcquireReusesCapacity) {
  BufferPool pool;
  Bytes buf;
  buf.resize(1500);
  const std::size_t grown = buf.capacity();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);
  Bytes again = pool.acquire();
  EXPECT_TRUE(again.empty());  // contents never survive the pool
  EXPECT_EQ(again.capacity(), grown);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, AcquireCopyCopiesContents) {
  BufferPool pool;
  Bytes seed;
  seed.resize(64, 0x5A);
  pool.release(std::move(seed));
  const std::uint8_t raw[] = {1, 2, 3, 4};
  Bytes copy = pool.acquire_copy(BytesView(raw, sizeof raw));
  ASSERT_EQ(copy.size(), 4u);
  EXPECT_EQ(copy[0], 1);
  EXPECT_EQ(copy[3], 4);
}

TEST(BufferPool, CapsPooledBuffers) {
  BufferPool pool(2);
  for (int i = 0; i < 5; ++i) {
    Bytes buf;
    buf.resize(16);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPool, EmptyBuffersAreNotPooled) {
  BufferPool pool;
  pool.release(Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(FixedPool, RecyclesBlocksLifo) {
  FixedPool<64> pool;
  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live(), 2u);
  pool.deallocate(b);
  EXPECT_EQ(pool.live(), 1u);
  void* c = pool.allocate();
  EXPECT_EQ(c, b);  // freelist head returned first
  EXPECT_EQ(pool.live(), 2u);
  pool.deallocate(a);
  pool.deallocate(c);
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace shadowprobe
