#include "common/bytes.h"

#include <gtest/gtest.h>

namespace shadowprobe {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 15u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0x34);
  EXPECT_EQ(b[3], 0xDE);
  EXPECT_EQ(b[6], 0xEF);
  EXPECT_EQ(b[7], 0x01);
  EXPECT_EQ(b[14], 0x08);
}

TEST(ByteWriter, RawAppendsStringsAndBytes) {
  ByteWriter w;
  w.raw("abc");
  w.raw(to_bytes("def"));
  EXPECT_EQ(to_string(BytesView(w.bytes())), "abcdef");
}

TEST(ByteWriter, PatchU16OverwritesInPlace) {
  ByteWriter w;
  w.u16(0);
  w.raw("xy");
  w.patch_u16(0, 0xBEEF);
  EXPECT_EQ(w.bytes()[0], 0xBE);
  EXPECT_EQ(w.bytes()[1], 0xEF);
  EXPECT_EQ(w.bytes()[2], 'x');
}

TEST(ByteWriter, PatchPastEndThrows) {
  ByteWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 1), std::out_of_range);
  EXPECT_THROW(w.patch_u16(5, 1), std::out_of_range);
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.u32(42);
  Bytes taken = std::move(w).take();
  EXPECT_EQ(taken.size(), 4u);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(1u << 31);
  w.u64(0xFFFFFFFFFFFFFFFFULL);
  w.raw("tail");
  ByteReader r{BytesView(w.bytes())};
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 1u << 31);
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(r.str(4), "tail");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, UnderflowLatchesErrorAndReturnsZero) {
  Bytes data = {0x01, 0x02};
  ByteReader r{BytesView(data)};
  EXPECT_EQ(r.u32(), 0u);  // only 2 bytes available
  EXPECT_FALSE(r.ok());
  // Error is sticky: even in-range reads now fail.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, RawUnderflowReturnsEmpty) {
  Bytes data = {1, 2, 3};
  ByteReader r{BytesView(data)};
  EXPECT_TRUE(r.raw(10).empty());
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SkipAndSeek) {
  Bytes data = {1, 2, 3, 4, 5};
  ByteReader r{BytesView(data)};
  r.skip(2);
  EXPECT_EQ(r.u8(), 3);
  r.seek(0);
  EXPECT_EQ(r.u8(), 1);
  r.seek(5);  // end is a valid seek target
  EXPECT_TRUE(r.ok());
  r.seek(6);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, ManualFailLatches) {
  Bytes data = {1};
  ByteReader r{BytesView(data)};
  r.fail();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);
}

TEST(BytesUtil, HexFormatsLowercase) {
  Bytes data = {0x00, 0xFF, 0xAB};
  EXPECT_EQ(hex(BytesView(data)), "00ffab");
  EXPECT_EQ(hex({}), "");
}

TEST(BytesUtil, StringRoundTrip) {
  std::string s = "hello\x00world";
  EXPECT_EQ(to_string(BytesView(to_bytes(s))), s);
}

}  // namespace
}  // namespace shadowprobe
