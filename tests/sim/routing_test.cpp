#include "sim/routing.h"

#include <gtest/gtest.h>

namespace shadowprobe::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.add(Prefix(Ipv4Addr(10, 0, 0, 0), 8), 1);
  table.add(Prefix(Ipv4Addr(10, 1, 0, 0), 16), 2);
  table.add(Prefix(Ipv4Addr(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 2, 3)).value(), 3u);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 9, 9)).value(), 2u);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 200, 0, 1)).value(), 1u);
  EXPECT_FALSE(table.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(RoutingTable, DefaultRouteCoversEverything) {
  RoutingTable table;
  table.set_default(7);
  EXPECT_EQ(table.lookup(Ipv4Addr(1, 2, 3, 4)).value(), 7u);
  table.add(Prefix(Ipv4Addr(1, 2, 0, 0), 16), 8);
  EXPECT_EQ(table.lookup(Ipv4Addr(1, 2, 3, 4)).value(), 8u);
  EXPECT_EQ(table.lookup(Ipv4Addr(9, 9, 9, 9)).value(), 7u);
}

TEST(RoutingTable, ReAddingPrefixReplacesNextHop) {
  RoutingTable table;
  Prefix p(Ipv4Addr(192, 168, 0, 0), 16);
  table.add(p, 1);
  table.add(p, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(Ipv4Addr(192, 168, 1, 1)).value(), 2u);
}

TEST(RoutingTable, HostRoutes) {
  RoutingTable table;
  table.set_default(1);
  table.add(Prefix(Ipv4Addr(5, 5, 5, 5), 32), 9);
  EXPECT_EQ(table.lookup(Ipv4Addr(5, 5, 5, 5)).value(), 9u);
  EXPECT_EQ(table.lookup(Ipv4Addr(5, 5, 5, 6)).value(), 1u);
}

TEST(RoutingTable, EmptyTableHasNoRoutes) {
  RoutingTable table;
  EXPECT_FALSE(table.lookup(Ipv4Addr(1, 1, 1, 1)).has_value());
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace shadowprobe::sim
