#include "sim/network.h"

#include <gtest/gtest.h>

#include "net/icmp.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;

/// Captures every datagram delivered to a host.
class Sink : public DatagramHandler {
 public:
  void on_datagram(Network&, NodeId, const net::Ipv4Datagram& dgram) override {
    received.push_back(dgram);
  }
  std::vector<net::Ipv4Datagram> received;
};

/// Captures every datagram arriving at a tapped node.
class RecordingTap : public PacketTap {
 public:
  void on_packet(Network&, NodeId node, const net::Ipv4Datagram& dgram) override {
    seen.emplace_back(node, dgram.header);
  }
  std::vector<std::pair<NodeId, net::Ipv4Header>> seen;
};

/// Linear topology: clientHost - r1 - r2 - r3 - serverHost.
class NetworkChainTest : public ::testing::Test {
 protected:
  NetworkChainTest() : net(loop) {
    client = net.add_host("client", Ipv4Addr(10, 0, 0, 1), &client_sink);
    r1 = net.add_router("r1", Ipv4Addr(10, 0, 1, 1));
    r2 = net.add_router("r2", Ipv4Addr(10, 0, 2, 1));
    r3 = net.add_router("r3", Ipv4Addr(10, 0, 3, 1));
    server = net.add_host("server", Ipv4Addr(10, 0, 9, 1), &server_sink);

    net.routes(client).set_default(r1);
    net.routes(r1).add(Prefix(Ipv4Addr(10, 0, 9, 0), 24), r2);
    net.routes(r1).add(Prefix(Ipv4Addr(10, 0, 0, 0), 24), client);
    net.routes(r2).add(Prefix(Ipv4Addr(10, 0, 9, 0), 24), r3);
    net.routes(r2).add(Prefix(Ipv4Addr(10, 0, 0, 0), 24), r1);
    net.routes(r3).add(Prefix(Ipv4Addr(10, 0, 9, 0), 24), server);
    net.routes(r3).add(Prefix(Ipv4Addr(10, 0, 0, 0), 24), r2);
    net.routes(server).set_default(r3);
  }

  void send_from_client(std::uint8_t ttl, BytesView payload = {}) {
    net::Ipv4Header header;
    header.src = Ipv4Addr(10, 0, 0, 1);
    header.dst = Ipv4Addr(10, 0, 9, 1);
    header.ttl = ttl;
    header.protocol = net::IpProto::kUdp;
    net::UdpDatagram udp;
    udp.src_port = 1000;
    udp.dst_port = 2000;
    udp.payload.assign(payload.begin(), payload.end());
    net.send(client, header, udp.encode(header.src, header.dst));
  }

  EventLoop loop;
  Network net;
  Sink client_sink;
  Sink server_sink;
  NodeId client, r1, r2, r3, server;
};

TEST_F(NetworkChainTest, DeliversAcrossRouters) {
  send_from_client(64, BytesView(to_bytes("hello")));
  loop.run();
  ASSERT_EQ(server_sink.received.size(), 1u);
  // Three routers forwarded: TTL 64 - 3 = 61.
  EXPECT_EQ(server_sink.received[0].header.ttl, 61);
  EXPECT_EQ(net.delivered(), 1u);
  EXPECT_EQ(net.forwarded(), 3u);
}

TEST_F(NetworkChainTest, ExactTtlStillDelivers) {
  send_from_client(4);  // 3 routers + host: expires only below 4
  loop.run();
  EXPECT_EQ(server_sink.received.size(), 1u);
  EXPECT_EQ(server_sink.received[0].header.ttl, 1);
}

TEST_F(NetworkChainTest, TtlExpiryGeneratesIcmpFromTheRightHop) {
  send_from_client(2);  // should die at r2
  loop.run();
  EXPECT_TRUE(server_sink.received.empty());
  ASSERT_EQ(client_sink.received.size(), 1u);
  const auto& dgram = client_sink.received[0];
  EXPECT_EQ(dgram.header.protocol, net::IpProto::kIcmp);
  EXPECT_EQ(dgram.header.src, Ipv4Addr(10, 0, 2, 1));  // r2's address
  auto icmp = net::IcmpMessage::decode(BytesView(dgram.payload));
  ASSERT_TRUE(icmp.ok());
  EXPECT_EQ(icmp.value().type, net::IcmpType::kTimeExceeded);
  auto quoted = icmp.value().quoted_datagram();
  ASSERT_TRUE(quoted.ok());
  EXPECT_EQ(quoted.value().header.dst, Ipv4Addr(10, 0, 9, 1));
  EXPECT_EQ(net.drops().get(static_cast<int>(DropReason::kTtlExpired)), 1u);
}

TEST_F(NetworkChainTest, TracerouteSweepMapsEveryHop) {
  for (std::uint8_t ttl = 1; ttl <= 3; ++ttl) send_from_client(ttl);
  loop.run();
  ASSERT_EQ(client_sink.received.size(), 3u);
  EXPECT_EQ(client_sink.received[0].header.src, Ipv4Addr(10, 0, 1, 1));
  EXPECT_EQ(client_sink.received[1].header.src, Ipv4Addr(10, 0, 2, 1));
  EXPECT_EQ(client_sink.received[2].header.src, Ipv4Addr(10, 0, 3, 1));
}

TEST_F(NetworkChainTest, TapSeesPacketOnlyWhenTtlReachesIt) {
  RecordingTap tap;
  net.add_tap(r3, &tap);
  send_from_client(2);  // dies at r2: r3 never sees it
  loop.run();
  EXPECT_TRUE(tap.seen.empty());
  send_from_client(3);  // dies at r3: tap sees it even though it is dropped
  loop.run();
  ASSERT_EQ(tap.seen.size(), 1u);
  EXPECT_EQ(tap.seen[0].first, r3);
}

TEST_F(NetworkChainTest, RemoveTapStopsObservation) {
  RecordingTap tap;
  net.add_tap(r1, &tap);
  send_from_client(64);
  loop.run();
  EXPECT_EQ(tap.seen.size(), 1u);
  net.remove_tap(r1, &tap);
  send_from_client(64);
  loop.run();
  EXPECT_EQ(tap.seen.size(), 1u);
}

TEST_F(NetworkChainTest, NoRouteDropsSilently) {
  net::Ipv4Header header;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(99, 99, 99, 99);
  header.protocol = net::IpProto::kUdp;
  net::UdpDatagram udp;
  net.send(client, header, udp.encode(header.src, header.dst));
  loop.run();
  EXPECT_EQ(net.drops().get(static_cast<int>(DropReason::kNoRoute)), 1u);
  EXPECT_TRUE(client_sink.received.empty());
}

TEST_F(NetworkChainTest, LatencyAccumulatesPerLink) {
  net.set_default_latency(10 * kMillisecond);
  send_from_client(64);
  loop.run();
  // client->r1->r2->r3->server = 4 links.
  EXPECT_EQ(loop.now(), 40 * kMillisecond);
}

TEST_F(NetworkChainTest, PerLinkLatencyOverrides) {
  net.set_default_latency(10 * kMillisecond);
  net.set_link_latency(r1, r2, 100 * kMillisecond);
  send_from_client(64);
  loop.run();
  EXPECT_EQ(loop.now(), 130 * kMillisecond);
}

TEST_F(NetworkChainTest, LoopbackDeliveryStaysLocal) {
  net::Ipv4Header header;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(10, 0, 0, 1);
  header.protocol = net::IpProto::kUdp;
  net::UdpDatagram udp;
  net.send(client, header, udp.encode(header.src, header.dst));
  loop.run();
  ASSERT_EQ(client_sink.received.size(), 1u);
  EXPECT_EQ(net.forwarded(), 0u);
}

TEST(Network, DuplicateAddressRejected) {
  EventLoop loop;
  Network net(loop);
  net.add_host("a", Ipv4Addr(1, 1, 1, 1), nullptr);
  EXPECT_THROW(net.add_host("b", Ipv4Addr(1, 1, 1, 1), nullptr), std::invalid_argument);
  NodeId c = net.add_host("c", Ipv4Addr(1, 1, 1, 2), nullptr);
  EXPECT_THROW(net.add_address(c, Ipv4Addr(1, 1, 1, 1)), std::invalid_argument);
}

TEST(Network, AnycastAllowsSharedAddress) {
  EventLoop loop;
  Network net(loop);
  Sink sink_a;
  Sink sink_b;
  NodeId a = net.add_host("a", Ipv4Addr(1, 1, 1, 1), &sink_a);
  NodeId b = net.add_host("b", Ipv4Addr(2, 2, 2, 2), &sink_b);
  net.add_anycast_address(b, Ipv4Addr(114, 114, 114, 114));
  net.add_anycast_address(a, Ipv4Addr(114, 114, 114, 114));

  Sink client_sink;
  NodeId client = net.add_host("client", Ipv4Addr(3, 3, 3, 3), &client_sink);
  NodeId router = net.add_router("r", Ipv4Addr(4, 4, 4, 4));
  net.routes(client).set_default(router);
  // The router decides which instance serves the anycast address.
  net.routes(router).add(Prefix(Ipv4Addr(114, 114, 0, 0), 16), b);

  net::Ipv4Header header;
  header.src = Ipv4Addr(3, 3, 3, 3);
  header.dst = Ipv4Addr(114, 114, 114, 114);
  header.protocol = net::IpProto::kUdp;
  net::UdpDatagram udp;
  net.send(client, header, udp.encode(header.src, header.dst));
  loop.run();
  EXPECT_TRUE(sink_a.received.empty());
  ASSERT_EQ(sink_b.received.size(), 1u);
}

TEST(Network, IcmpErrorsNeverTriggerIcmpErrors) {
  EventLoop loop;
  Network net(loop);
  Sink sink;
  NodeId host = net.add_host("h", Ipv4Addr(1, 0, 0, 1), &sink);
  NodeId r = net.add_router("r", Ipv4Addr(1, 0, 0, 2));
  net.routes(host).set_default(r);
  // ICMP packet with TTL 1 dies at the router; no Time Exceeded comes back.
  net::Ipv4Header header;
  header.src = Ipv4Addr(1, 0, 0, 1);
  header.dst = Ipv4Addr(9, 9, 9, 9);
  header.ttl = 1;
  header.protocol = net::IpProto::kIcmp;
  net::IcmpMessage echo;
  echo.type = net::IcmpType::kEchoRequest;
  net.send(host, header, echo.encode());
  loop.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(net.drops().get(static_cast<int>(DropReason::kTtlExpired)), 1u);
}

TEST(Network, SendUdpHelperBuildsValidDatagrams) {
  EventLoop loop;
  Network net(loop);
  Sink sink;
  NodeId a = net.add_host("a", Ipv4Addr(1, 0, 0, 1), nullptr);
  NodeId b = net.add_host("b", Ipv4Addr(1, 0, 0, 2), &sink);
  NodeId r = net.add_router("r", Ipv4Addr(1, 0, 0, 3));
  net.routes(a).set_default(r);
  net.routes(r).add(Prefix(Ipv4Addr(1, 0, 0, 2), 32), b);
  send_udp(net, a, Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2), 111, 222,
           BytesView(to_bytes("payload")), 9, 0x7777);
  loop.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].header.identification, 0x7777);
  EXPECT_EQ(sink.received[0].header.ttl, 8);
  auto udp = net::UdpDatagram::decode(BytesView(sink.received[0].payload),
                                      sink.received[0].header.src,
                                      sink.received[0].header.dst);
  ASSERT_TRUE(udp.ok());
  EXPECT_EQ(udp.value().src_port, 111);
  EXPECT_EQ(udp.value().payload, to_bytes("payload"));
}

}  // namespace
}  // namespace shadowprobe::sim
