#include "sim/trace.h"

#include <gtest/gtest.h>

#include "net/dns.h"
#include "net/tcp.h"
#include "net/http.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : net(loop) {
    a = net.add_host("a", Ipv4Addr(10, 0, 0, 1), nullptr);
    r = net.add_router("r", Ipv4Addr(10, 0, 0, 254));
    b = net.add_host("b", Ipv4Addr(10, 0, 1, 1), nullptr);
    net.routes(a).set_default(r);
    net.routes(b).set_default(r);
    net.routes(r).add(Prefix(Ipv4Addr(10, 0, 1, 1), 32), b);
    net.routes(r).add(Prefix(Ipv4Addr(10, 0, 0, 1), 32), a);
    net.add_tap(r, &trace);
  }

  sim::EventLoop loop;
  sim::Network net;
  NodeId a, r, b;
  TraceRecorder trace;
};

TEST_F(TraceTest, CapturesDnsQuerySummaries) {
  net::DnsMessage query = net::DnsMessage::query(
      1, net::DnsName::must_parse("watch.example.com"), net::DnsType::kA);
  Bytes wire = query.encode();
  send_udp(net, a, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 53, BytesView(wire));
  loop.run();
  ASSERT_EQ(trace.entries().size(), 1u);
  const TraceEntry& entry = trace.entries()[0];
  EXPECT_EQ(entry.src, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(entry.dst_port, 53);
  EXPECT_NE(entry.info.find("DNS query watch.example.com A"), std::string::npos);
  EXPECT_EQ(trace.protocol_counts().get("UDP"), 1u);
}

TEST_F(TraceTest, SummarizesHttpAndTls) {
  net::HttpRequest request;
  request.target = "/admin";
  request.headers.add("Host", "h.example.com");
  net::TcpSegment seg;
  seg.src_port = 5000;
  seg.dst_port = 80;
  seg.flags = {.ack = true, .psh = true};
  seg.payload = request.encode();
  net::Ipv4Header header;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(10, 0, 1, 1);
  header.protocol = net::IpProto::kTcp;
  net.send(a, header, seg.encode(header.src, header.dst));

  net::TlsClientHello hello;
  hello.cipher_suites = {0x1301};
  hello.set_ech("inner.example.com", "outer.example");
  net::TcpSegment tls_seg;
  tls_seg.src_port = 5001;
  tls_seg.dst_port = 443;
  tls_seg.flags = {.ack = true, .psh = true};
  tls_seg.payload = hello.encode_record();
  net.send(a, header, tls_seg.encode(header.src, header.dst));
  loop.run();

  ASSERT_EQ(trace.entries().size(), 2u);
  EXPECT_NE(trace.entries()[0].info.find("HTTP GET /admin host=h.example.com"),
            std::string::npos);
  EXPECT_NE(trace.entries()[1].info.find("TLS ClientHello sni=outer.example +ech"),
            std::string::npos);
}

TEST_F(TraceTest, SummarizesIcmpAndBareTcp) {
  // TTL-expiring packet triggers ICMP back through the tapped router.
  send_udp(net, a, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 1, 9999, {}, /*ttl=*/1);
  loop.run();
  // Tap saw the dying UDP packet; the ICMP reply originates AT the router,
  // so it is not re-observed there.
  ASSERT_GE(trace.entries().size(), 1u);
  EXPECT_NE(trace.entries()[0].info.find("UDP"), std::string::npos);

  net::TcpSegment syn;
  syn.src_port = 1234;
  syn.dst_port = 8080;
  syn.flags = {.syn = true};
  net::Ipv4Header header;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(10, 0, 1, 1);
  header.protocol = net::IpProto::kTcp;
  net.send(a, header, syn.encode(header.src, header.dst));
  loop.run();
  EXPECT_NE(trace.entries().back().info.find("TCP [S]"), std::string::npos);
}

TEST_F(TraceTest, CapacityBoundsMemory) {
  TraceRecorder small(3);
  net.add_tap(r, &small);
  for (int i = 0; i < 10; ++i) {
    send_udp(net, a, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 53, {});
  }
  loop.run();
  EXPECT_EQ(small.entries().size(), 3u);
  EXPECT_EQ(small.captured(), 10u);
  EXPECT_EQ(small.dropped(), 7u);
}

TEST_F(TraceTest, DumpRendersLines) {
  send_udp(net, a, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 53, {});
  send_udp(net, a, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4001, 53, {});
  loop.run();
  std::string dump = trace.dump(1);
  EXPECT_NE(dump.find("10.0.0.1:4000 > 10.0.1.1:53"), std::string::npos);
  EXPECT_NE(dump.find("... 1 more entries"), std::string::npos);
}

TEST_F(TraceTest, ClearResets) {
  send_udp(net, a, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 53, {});
  loop.run();
  trace.clear();
  EXPECT_TRUE(trace.entries().empty());
  EXPECT_EQ(trace.captured(), 0u);
  EXPECT_EQ(trace.protocol_counts().total(), 0u);
}

}  // namespace
}  // namespace shadowprobe::sim
