// Deterministic fault injection: profile parsing, entity-keyed decisions.
#include "sim/fault.h"

#include <gtest/gtest.h>

namespace shadowprobe::sim {
namespace {

net::Ipv4Header header_for(std::uint16_t ipid, std::uint8_t ttl = 64) {
  net::Ipv4Header header;
  header.src = net::Ipv4Addr(10, 0, 0, 1);
  header.dst = net::Ipv4Addr(10, 0, 0, 2);
  header.protocol = net::IpProto::kUdp;
  header.ttl = ttl;
  header.identification = ipid;
  return header;
}

TEST(FaultProfile, DefaultProfileIsDisabled) {
  FaultProfile profile;
  EXPECT_FALSE(profile.enabled());
  EXPECT_TRUE(FaultProfile::parse("").value().str().find("loss") == std::string::npos);
}

TEST(FaultProfile, ParsesFullSpec) {
  auto parsed = FaultProfile::parse(
      "loss=0.05,jitter=20ms,flap=0.02@10m,vp-churn=0.15@2h,"
      "hp-outage=US@30h+12h,retries=5,rto=2s,quarantine=4");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const FaultProfile& profile = parsed.value();
  EXPECT_TRUE(profile.enabled());
  EXPECT_DOUBLE_EQ(profile.link_loss, 0.05);
  EXPECT_EQ(profile.jitter, 20 * kMillisecond);
  EXPECT_DOUBLE_EQ(profile.link_flap_rate, 0.02);
  EXPECT_EQ(profile.link_flap_duration, 10 * kMinute);
  EXPECT_DOUBLE_EQ(profile.vp_churn, 0.15);
  EXPECT_EQ(profile.vp_outage, 2 * kHour);
  ASSERT_EQ(profile.collector_outages.size(), 1u);
  EXPECT_EQ(profile.collector_outages[0].location, "US");
  EXPECT_EQ(profile.collector_outages[0].start, 30 * kHour);
  EXPECT_EQ(profile.collector_outages[0].duration, 12 * kHour);
  EXPECT_EQ(profile.max_retries, 5);
  EXPECT_EQ(profile.retry_timeout, 2 * kSecond);
  EXPECT_EQ(profile.quarantine_threshold, 4);
}

TEST(FaultProfile, LossyPresetWithOverrides) {
  auto parsed = FaultProfile::parse("lossy,loss=0.2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().link_loss, 0.2);   // override wins
  EXPECT_EQ(parsed.value().jitter, 20 * kMillisecond);  // preset default
  EXPECT_FALSE(FaultProfile::parse("rainy").ok());   // unknown preset
  EXPECT_TRUE(FaultProfile::parse("none").ok());
  EXPECT_FALSE(FaultProfile::parse("none").value().enabled());
}

TEST(FaultProfile, StrRoundTripsThroughParse) {
  auto parsed = FaultProfile::parse("lossy,hp-outage=DE@1d+6h,quarantine=5");
  ASSERT_TRUE(parsed.ok());
  std::string canonical = parsed.value().str();
  auto reparsed = FaultProfile::parse(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().str(), canonical);
}

TEST(FaultProfile, RejectsMalformedValues) {
  EXPECT_FALSE(FaultProfile::parse("loss=1.5").ok());       // out of [0, 1)
  EXPECT_FALSE(FaultProfile::parse("loss=-0.1").ok());
  EXPECT_FALSE(FaultProfile::parse("loss=abc").ok());
  EXPECT_FALSE(FaultProfile::parse("jitter=20").ok());      // missing unit
  EXPECT_FALSE(FaultProfile::parse("jitter=-5ms").ok());
  EXPECT_FALSE(FaultProfile::parse("flap=0.5@nope").ok());
  EXPECT_FALSE(FaultProfile::parse("hp-outage=US").ok());   // missing @start+dur
  EXPECT_FALSE(FaultProfile::parse("hp-outage=@1h+1h").ok());
  EXPECT_FALSE(FaultProfile::parse("retries=-1").ok());
  EXPECT_FALSE(FaultProfile::parse("rto=0s").ok());
  EXPECT_FALSE(FaultProfile::parse("quarantine=0").ok());
  EXPECT_FALSE(FaultProfile::parse("turbo=1").ok());        // unknown key
  EXPECT_FALSE(FaultProfile::parse("loss").ok());           // not key=value
  EXPECT_FALSE(FaultProfile::parse("loss=").ok());          // empty value
}

TEST(FaultProfile, DecoyDeadlineCoversTheBackoffSeries) {
  FaultProfile profile;
  profile.max_retries = 2;
  profile.retry_timeout = 1 * kSecond;
  // 1s + 2s + 4s + 1s slack.
  EXPECT_EQ(profile.decoy_deadline(), 8 * kSecond);
}

TEST(FaultInjector, LossIsDeterministicPerAttempt) {
  auto profile = FaultProfile::parse("loss=0.5").value();
  FaultInjector a(profile, 42, kDay);
  FaultInjector b(profile, 42, kDay);
  Bytes payload{1, 2, 3};
  bool differs_over_time = false;
  for (SimTime now = 0; now < 64; ++now) {
    bool lost_a = a.lose_packet("x", "y", header_for(7), payload, now);
    bool lost_b = b.lose_packet("x", "y", header_for(7), payload, now);
    // Same seed, same attempt key -> same fate on both injectors.
    EXPECT_EQ(lost_a, lost_b) << "at t=" << now;
    if (lost_a != a.lose_packet("x", "y", header_for(7), payload, 0)) {
      differs_over_time = true;
    }
  }
  // The send instant is part of the key: a retransmission at a later time is
  // an independent draw, not a guaranteed repeat loss.
  EXPECT_TRUE(differs_over_time);
}

TEST(FaultInjector, LossKeyIsSymmetricInTheLinkDirection) {
  auto profile = FaultProfile::parse("loss=0.5").value();
  FaultInjector injector(profile, 7, kDay);
  Bytes payload{9};
  for (SimTime now = 0; now < 32; ++now) {
    EXPECT_EQ(injector.lose_packet("alpha", "beta", header_for(1), payload, now),
              injector.lose_packet("beta", "alpha", header_for(1), payload, now));
  }
}

TEST(FaultInjector, JitterIsBoundedAndDeterministic) {
  auto profile = FaultProfile::parse("jitter=5ms").value();
  FaultInjector a(profile, 99, kDay);
  FaultInjector b(profile, 99, kDay);
  Bytes payload{};
  for (SimTime now = 0; now < 32; ++now) {
    SimDuration d = a.jitter_for("x", "y", header_for(3), payload, now);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 5 * kMillisecond);
    EXPECT_EQ(d, b.jitter_for("x", "y", header_for(3), payload, now));
  }
}

TEST(FaultInjector, FlapWindowsAreMemoizedAndSeedStable) {
  auto profile = FaultProfile::parse("flap=0.9@1h").value();
  FaultInjector a(profile, 5, 10 * kDay);
  FaultInjector b(profile, 5, 10 * kDay);
  int flapped = 0;
  for (int link = 0; link < 32; ++link) {
    std::string name = "node-" + std::to_string(link);
    bool down_now = false;
    for (SimTime t = 0; t < 10 * kDay; t += kHour / 2) {
      bool down = a.link_down(name, "hub", t);
      EXPECT_EQ(down, b.link_down("hub", name, t));  // direction-free
      down_now = down_now || down;
    }
    if (down_now) ++flapped;
  }
  // At 90% flap probability nearly every link must flap at least once.
  EXPECT_GT(flapped, 16);
  EXPECT_GT(a.stats().flap_drops, 0u);
}

TEST(FaultInjector, NodeOutagesAreHalfOpenWindows) {
  FaultInjector injector(FaultProfile{}, 1, kDay);
  injector.add_node_outage("hp-us", {10, 20});
  EXPECT_FALSE(injector.node_down("hp-us", 9));
  EXPECT_TRUE(injector.node_down("hp-us", 10));
  EXPECT_TRUE(injector.node_down("hp-us", 19));
  EXPECT_FALSE(injector.node_down("hp-us", 20));
  EXPECT_FALSE(injector.node_down("elsewhere", 15));
  ASSERT_NE(injector.node_outages("hp-us"), nullptr);
  EXPECT_EQ(injector.node_outages("hp-us")->size(), 1u);
}

TEST(FaultInjector, ChurnOutageIsAPureFunctionOfTheEntity) {
  auto profile = FaultProfile::parse("vp-churn=0.5@1h").value();
  FaultInjector a(profile, 77, kDay);
  FaultInjector b(profile, 77, kDay);
  int churned = 0;
  for (int vp = 0; vp < 64; ++vp) {
    std::string id = "vp-" + std::to_string(vp);
    auto wa = a.derive_churn_outage(id, kHour, 20 * kHour);
    auto wb = b.derive_churn_outage(id, kHour, 20 * kHour);
    ASSERT_EQ(wa.has_value(), wb.has_value());
    if (wa) {
      EXPECT_EQ(wa->start, wb->start);
      EXPECT_EQ(wa->end, wb->end);
      EXPECT_GE(wa->start, kHour);
      EXPECT_LE(wa->start, 20 * kHour);
      EXPECT_EQ(wa->duration(), kHour);
      ++churned;
    }
  }
  // Roughly half the fleet churns; guard both tails loosely.
  EXPECT_GT(churned, 16);
  EXPECT_LT(churned, 48);
}

}  // namespace
}  // namespace shadowprobe::sim
