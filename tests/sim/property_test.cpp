// Property-style sweeps over the simulation engine: routing equivalence to
// a reference implementation, TCP session fuzz, and event-order invariance.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/routing.h"
#include "sim/tcp_stack.h"

namespace shadowprobe::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;

// -- routing: LPM equals a brute-force reference --------------------------------

class RoutingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoutingProperty, MatchesBruteForceReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);
  RoutingTable table;
  std::vector<std::pair<Prefix, NodeId>> reference;
  int entries = static_cast<int>(rng.range(5, 60));
  for (int i = 0; i < entries; ++i) {
    int length = static_cast<int>(rng.range(0, 32));
    Prefix prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.bits())), length);
    NodeId hop = static_cast<NodeId>(i);
    table.add(prefix, hop);
    // Reference keeps the latest hop per canonical prefix (the table
    // replaces on duplicates).
    bool replaced = false;
    for (auto& [existing, existing_hop] : reference) {
      if (existing == prefix) {
        existing_hop = hop;
        replaced = true;
      }
    }
    if (!replaced) reference.emplace_back(prefix, hop);
  }
  for (int probe = 0; probe < 400; ++probe) {
    Ipv4Addr addr(static_cast<std::uint32_t>(rng.bits()));
    // Brute force: longest matching prefix, first insertion wins ties.
    std::optional<NodeId> expected;
    int best_length = -1;
    for (const auto& [prefix, hop] : reference) {
      if (prefix.contains(addr) && prefix.length() > best_length) {
        best_length = prefix.length();
        expected = hop;
      }
    }
    auto actual = table.lookup(addr);
    ASSERT_EQ(actual.has_value(), expected.has_value()) << addr.str();
    if (expected) EXPECT_EQ(*actual, *expected) << addr.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty, ::testing::Range(0, 8));

// -- TCP: randomized request/response sessions all complete ---------------------

class TcpSessionProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpSessionProperty, RandomSessionsDeliverEveryByte) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2741 + 11);
  EventLoop loop;
  Network net(loop);
  struct Host : DatagramHandler {
    Host(Network& net, NodeId node, std::uint64_t seed) : stack(net, node, Rng(seed)) {}
    void on_datagram(Network&, NodeId, const net::Ipv4Datagram& dgram) override {
      if (dgram.header.protocol == net::IpProto::kTcp) stack.on_segment(dgram);
    }
    TcpStack stack;
  };
  NodeId client_node = net.add_host("c", Ipv4Addr(10, 0, 0, 1), nullptr);
  NodeId server_node = net.add_host("s", Ipv4Addr(10, 0, 0, 2), nullptr);
  NodeId router = net.add_router("r", Ipv4Addr(10, 0, 0, 3));
  net.routes(client_node).set_default(router);
  net.routes(server_node).set_default(router);
  net.routes(router).add(Prefix(Ipv4Addr(10, 0, 0, 1), 32), client_node);
  net.routes(router).add(Prefix(Ipv4Addr(10, 0, 0, 2), 32), server_node);
  Host client(net, client_node, rng.bits());
  Host server(net, server_node, rng.bits());
  net.set_handler(client_node, &client);
  net.set_handler(server_node, &server);

  // The server echoes a response whose size depends on the request.
  std::uint64_t server_bytes_in = 0;
  server.stack.listen(80, [&](const ConnKey&, BytesView data) {
    server_bytes_in += data.size();
    return Bytes(data.size() % 97 + 1, 0x42);
  });

  int sessions = static_cast<int>(rng.range(2, 8));
  std::map<ConnKey, int> remaining;     // requests left per connection
  std::uint64_t client_bytes_out = 0;
  std::uint64_t client_bytes_in = 0;
  client.stack.set_on_established([&](const ConnKey& key) {
    int size = static_cast<int>(rng.range(1, 900));
    client.stack.send_data(key, Bytes(static_cast<std::size_t>(size), 0x7));
    client_bytes_out += static_cast<std::uint64_t>(size);
  });
  client.stack.set_on_data([&](const ConnKey& key, BytesView data) {
    client_bytes_in += data.size();
    if (--remaining[key] > 0) {
      int size = static_cast<int>(rng.range(1, 900));
      client.stack.send_data(key, Bytes(static_cast<std::size_t>(size), 0x7));
      client_bytes_out += static_cast<std::uint64_t>(size);
    } else {
      client.stack.close(key);
    }
  });
  for (int s = 0; s < sessions; ++s) {
    ConnKey key = client.stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
    remaining[key] = static_cast<int>(rng.range(1, 5));
  }
  loop.run();

  EXPECT_EQ(server_bytes_in, client_bytes_out);
  EXPECT_GT(client_bytes_in, 0u);
  EXPECT_EQ(client.stack.open_connections(), 0u);
  EXPECT_EQ(server.stack.open_connections(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpSessionProperty, ::testing::Range(0, 8));

// -- event loop: execution order is by (time, insertion) regardless of
//    insertion pattern ----------------------------------------------------------

class EventOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(EventOrderProperty, ExecutionOrderIsStableSort) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  EventLoop loop;
  struct Planned {
    SimTime when;
    int id;
  };
  std::vector<Planned> plan;
  for (int i = 0; i < 200; ++i) {
    plan.push_back({static_cast<SimTime>(rng.below(50)), i});
  }
  std::vector<int> executed;
  for (const auto& p : plan) {
    loop.schedule_at(p.when, [&executed, id = p.id] { executed.push_back(id); });
  }
  loop.run();
  std::vector<Planned> expected = plan;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Planned& a, const Planned& b) { return a.when < b.when; });
  ASSERT_EQ(executed.size(), expected.size());
  for (std::size_t i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(executed[i], expected[i].id) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace shadowprobe::sim
