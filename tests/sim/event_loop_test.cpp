#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace shadowprobe::sim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
  EXPECT_EQ(loop.processed(), 3u);
}

TEST(EventLoop, TiesBreakInInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, EventsScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule(1, recurse);
  };
  loop.schedule(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), 4);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.schedule(10, [&] { ++ran; });
  loop.schedule(20, [&] { ++ran; });
  loop.schedule(30, [&] { ++ran; });
  loop.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(loop.now(), 100);  // clock ends at the deadline even when idle
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.schedule(10, [] {});
  loop.run();
  SimTime before = loop.now();
  bool ran = false;
  loop.schedule(-100, [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), before);
}

TEST(EventLoop, ScheduleAtPastClampsToNow) {
  EventLoop loop;
  loop.schedule(50, [] {});
  loop.run();
  SimTime fired_at = -1;
  loop.schedule_at(10, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 50);
}

TEST(EventLoop, StepReturnsFalseWhenEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.step());
  loop.schedule(1, [] {});
  EXPECT_TRUE(loop.step());
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, SameTimestampFiresInScheduleOrder) {
  // Regression: the heap used to mutate entries in place through const_cast;
  // ties on `when` must still break on the monotone sequence number, so
  // events scheduled for the same instant fire in schedule order.
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    loop.schedule(100, [&order, i] { order.push_back(i); });
  }
  // Interleave an earlier and a later event to force heap churn.
  loop.schedule(50, [&order] { order.push_back(-1); });
  loop.schedule(200, [&order] { order.push_back(-2); });
  loop.run();
  ASSERT_EQ(order.size(), 66u);
  EXPECT_EQ(order.front(), -1);
  EXPECT_EQ(order.back(), -2);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventLoop, CancellableTimerFiresWhenNotCancelled) {
  EventLoop loop;
  int fired = 0;
  TimerId id = loop.schedule_cancellable(5, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  // Already fired: cancel is a no-op and reports it.
  EXPECT_FALSE(loop.cancel(id));
  EXPECT_EQ(loop.stats().cancelled, 0u);
}

TEST(EventLoop, CancelDisarmsAQueuedTimer) {
  EventLoop loop;
  int fired = 0;
  TimerId id = loop.schedule_cancellable(5, [&] { ++fired; });
  loop.schedule(10, [] {});
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // double-cancel
  loop.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.stats().cancelled, 1u);
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoop, RunUntilIgnoresCancelledFrontEntries) {
  // Regression: a cancelled (tombstoned) entry at the heap front used to
  // make run_until pop past the deadline — the skip-loop consumed the
  // tombstone and then executed the next live event even if it was later
  // than the deadline.
  EventLoop loop;
  int fired = 0;
  TimerId id = loop.schedule_cancellable(5, [&] { fired += 100; });
  loop.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  loop.run_until(10);
  EXPECT_EQ(fired, 0);  // the t=20 event must NOT run yet
  EXPECT_EQ(loop.now(), 10);
  loop.run_until(30);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, CancelOfUnknownIdIsRejected) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(12345));
  TimerId id = loop.schedule_cancellable(1, [] {});
  EXPECT_FALSE(loop.cancel(id + 1));
  EXPECT_TRUE(loop.cancel(id));
}

TEST(EventLoop, StatsTrackProcessedAndHighWater) {
  EventLoop loop;
  for (int i = 0; i < 10; ++i) loop.schedule(i, [] {});
  EXPECT_EQ(loop.stats().pending, 10u);
  EXPECT_EQ(loop.stats().high_water, 10u);
  loop.run();
  EXPECT_EQ(loop.stats().processed, 10u);
  EXPECT_EQ(loop.stats().pending, 0u);
  EXPECT_EQ(loop.stats().high_water, 10u);
  EXPECT_EQ(loop.stats().scheduled, 10u);
}

}  // namespace
}  // namespace shadowprobe::sim
