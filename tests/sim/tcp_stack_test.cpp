#include "sim/tcp_stack.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/fault.h"

namespace shadowprobe::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;

/// Host whose handler feeds a TcpStack.
class TcpHost : public DatagramHandler {
 public:
  TcpHost(Network& net, NodeId node, std::uint64_t seed)
      : stack(net, node, Rng(seed)) {}

  void on_datagram(Network&, NodeId, const net::Ipv4Datagram& dgram) override {
    if (dgram.header.protocol == net::IpProto::kTcp) stack.on_segment(dgram);
  }

  TcpStack stack;
};

class TcpStackTest : public ::testing::Test {
 protected:
  TcpStackTest() : net(loop) {
    client_node = net.add_host("client", Ipv4Addr(10, 0, 0, 1), nullptr);
    server_node = net.add_host("server", Ipv4Addr(10, 0, 0, 2), nullptr);
    NodeId r = net.add_router("r", Ipv4Addr(10, 0, 0, 3));
    net.routes(client_node).set_default(r);
    net.routes(server_node).set_default(r);
    net.routes(r).add(Prefix(Ipv4Addr(10, 0, 0, 1), 32), client_node);
    net.routes(r).add(Prefix(Ipv4Addr(10, 0, 0, 2), 32), server_node);
    client = std::make_unique<TcpHost>(net, client_node, 1);
    server = std::make_unique<TcpHost>(net, server_node, 2);
    net.set_handler(client_node, client.get());
    net.set_handler(server_node, server.get());
  }

  EventLoop loop;
  Network net;
  NodeId client_node, server_node;
  std::unique_ptr<TcpHost> client, server;
};

TEST_F(TcpStackTest, HandshakeEstablishesBothSides) {
  bool established = false;
  server->stack.listen(80, [](const ConnKey&, BytesView) { return Bytes{}; });
  client->stack.set_on_established([&](const ConnKey&) { established = true; });
  ConnKey key = client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  loop.run();
  EXPECT_TRUE(established);
  EXPECT_EQ(client->stack.state(key), TcpState::kEstablished);
  EXPECT_EQ(server->stack.open_connections(), 1u);
}

TEST_F(TcpStackTest, RequestResponseExchange) {
  server->stack.listen(80, [](const ConnKey&, BytesView data) {
    EXPECT_EQ(to_string(data), "ping");
    return to_bytes("pong");
  });
  std::string response;
  client->stack.set_on_established([&](const ConnKey& key) {
    client->stack.send_data(key, BytesView(to_bytes("ping")));
  });
  client->stack.set_on_data([&](const ConnKey&, BytesView data) {
    response = to_string(data);
  });
  client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  loop.run();
  EXPECT_EQ(response, "pong");
}

TEST_F(TcpStackTest, MultipleRequestsOnOneConnection) {
  int served = 0;
  server->stack.listen(80, [&](const ConnKey&, BytesView) {
    ++served;
    return to_bytes("r" + std::to_string(served));
  });
  int responses = 0;
  ConnKey conn;
  client->stack.set_on_established([&](const ConnKey& key) {
    conn = key;
    client->stack.send_data(key, BytesView(to_bytes("q1")));
  });
  client->stack.set_on_data([&](const ConnKey& key, BytesView) {
    if (++responses < 3) {
      client->stack.send_data(key, BytesView(to_bytes("again")));
    }
  });
  client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  loop.run();
  EXPECT_EQ(served, 3);
  EXPECT_EQ(responses, 3);
}

TEST_F(TcpStackTest, FinTeardownClosesBothSides) {
  server->stack.listen(80, [](const ConnKey&, BytesView) { return Bytes{}; });
  ConnKey key = client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  client->stack.set_on_established([&](const ConnKey& k) { client->stack.close(k); });
  loop.run();
  EXPECT_FALSE(client->stack.state(key).has_value());
  EXPECT_EQ(client->stack.open_connections(), 0u);
  EXPECT_EQ(server->stack.open_connections(), 0u);
}

TEST_F(TcpStackTest, ClosedPortDrawsRst) {
  bool reset = false;
  bool during_handshake = false;
  client->stack.set_on_reset([&](const ConnKey&, bool handshake) {
    reset = true;
    during_handshake = handshake;
  });
  client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 8080);
  loop.run();
  EXPECT_TRUE(reset);
  EXPECT_TRUE(during_handshake);
  EXPECT_EQ(client->stack.open_connections(), 0u);
}

TEST_F(TcpStackTest, SilentModeNeverAnswers) {
  server->stack.set_respond_rst(false);
  bool reset = false;
  bool established = false;
  client->stack.set_on_reset([&](const ConnKey&, bool) { reset = true; });
  client->stack.set_on_established([&](const ConnKey&) { established = true; });
  client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 8080);
  loop.run();
  EXPECT_FALSE(reset);
  EXPECT_FALSE(established);
}

TEST_F(TcpStackTest, ConnectionsUseDistinctEphemeralPorts) {
  server->stack.listen(80, [](const ConnKey&, BytesView) { return Bytes{}; });
  ConnKey a = client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  ConnKey b = client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  EXPECT_NE(a.local_port, b.local_port);
  loop.run();
  EXPECT_EQ(server->stack.open_connections(), 2u);
}

TEST_F(TcpStackTest, StrayAckToUnknownTupleDrawsRst) {
  // Raw segment injected outside any connection (Phase-II style).
  net::TcpSegment seg;
  seg.src_port = 5555;
  seg.dst_port = 80;
  seg.seq = 1;
  seg.flags = {.ack = true, .psh = true};
  seg.payload = to_bytes("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  net::Ipv4Header header;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(10, 0, 0, 2);
  header.protocol = net::IpProto::kTcp;
  std::vector<net::TcpFlags> client_saw;
  // Lightweight capture: replace client handler with a recording sink.
  class RstSink : public DatagramHandler {
   public:
    explicit RstSink(std::vector<net::TcpFlags>& out) : out_(out) {}
    void on_datagram(Network&, NodeId, const net::Ipv4Datagram& dgram) override {
      auto seg = net::TcpSegment::decode(BytesView(dgram.payload), dgram.header.src,
                                         dgram.header.dst);
      if (seg.ok()) out_.push_back(seg.value().flags);
    }
    std::vector<net::TcpFlags>& out_;
  } sink(client_saw);
  net.set_handler(client_node, &sink);
  net.send(client_node, header, seg.encode(header.src, header.dst));
  loop.run();
  ASSERT_EQ(client_saw.size(), 1u);
  EXPECT_TRUE(client_saw[0].rst);
}

TEST_F(TcpStackTest, SynIsRetransmittedThroughAnEndpointOutage) {
  // The server's collector is down for the first 10 seconds: the initial SYN
  // is swallowed, the armed retransmission carries the handshake through.
  FaultInjector injector(FaultProfile{}, 1, kDay);
  injector.add_node_outage("server", {0, 10 * kSecond});
  net.set_fault_injector(&injector);
  client->stack.set_retransmit({true, 3 * kSecond, 5});
  server->stack.listen(80, [](const ConnKey&, BytesView) { return Bytes{}; });
  bool established = false;
  client->stack.set_on_established([&](const ConnKey&) { established = true; });
  ConnKey key = client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  loop.run();
  EXPECT_TRUE(established);
  EXPECT_EQ(client->stack.state(key), TcpState::kEstablished);
  EXPECT_GT(client->stack.retransmissions(), 0u);
  EXPECT_GT(net.counters().endpoint_down, 0u);
}

TEST_F(TcpStackTest, ExhaustedHandshakeRetriesReportFailure) {
  // Outage outlasting the whole backoff series: the connection must give up
  // and surface through on_failed, leaving no connection state behind.
  FaultInjector injector(FaultProfile{}, 1, kDay);
  injector.add_node_outage("server", {0, kDay});
  net.set_fault_injector(&injector);
  client->stack.set_retransmit({true, 1 * kSecond, 2});
  server->stack.listen(80, [](const ConnKey&, BytesView) { return Bytes{}; });
  bool failed = false;
  bool failed_in_handshake = false;
  client->stack.set_on_failed([&](const ConnKey&, bool handshake) {
    failed = true;
    failed_in_handshake = handshake;
  });
  client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  loop.run();
  EXPECT_TRUE(failed);
  EXPECT_TRUE(failed_in_handshake);
  EXPECT_EQ(client->stack.open_connections(), 0u);
  EXPECT_EQ(client->stack.retransmissions(), 2u);
}

TEST_F(TcpStackTest, DataSegmentIsRetransmittedAfterLoss) {
  // Handshake completes cleanly, then the server vanishes just as the data
  // segment is in flight; the retransmission after the outage delivers it.
  FaultInjector injector(FaultProfile{}, 1, kDay);
  net.set_fault_injector(&injector);
  client->stack.set_retransmit({true, 2 * kSecond, 4});
  Bytes seen;
  server->stack.listen(80, [&](const ConnKey&, BytesView data) {
    seen.assign(data.begin(), data.end());
    return Bytes{};
  });
  ConnKey key = client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  client->stack.set_on_established([&](const ConnKey&) {
    injector.add_node_outage("server", {loop.now(), loop.now() + 3 * kSecond});
    client->stack.send_data(key, to_bytes("ping"));
  });
  loop.run();
  EXPECT_EQ(seen, to_bytes("ping"));
  EXPECT_GT(client->stack.retransmissions(), 0u);
}

TEST_F(TcpStackTest, DisabledPolicyArmsNoTimers) {
  // Null-profile guarantee: without set_retransmit the loss-free behaviour
  // (and the event count) is untouched.
  server->stack.listen(80, [](const ConnKey&, BytesView) { return Bytes{}; });
  client->stack.connect(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 80);
  loop.run();
  EXPECT_EQ(client->stack.retransmissions(), 0u);
  EXPECT_EQ(loop.stats().cancelled, 0u);
  EXPECT_FALSE(client->stack.retransmit_policy().enabled);
}

}  // namespace
}  // namespace shadowprobe::sim
