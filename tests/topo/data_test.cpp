#include "topo/data.h"

#include <gtest/gtest.h>

#include <set>

#include "net/ipv4.h"

namespace shadowprobe::topo {
namespace {

TEST(Catalogs, CountriesHaveValidWeightsAndRegions) {
  std::set<std::string> codes;
  std::set<std::string> regions = {"NA", "EU", "AS", "SA", "AF", "OC"};
  double vp_total = 0;
  for (const auto& c : countries()) {
    EXPECT_EQ(c.code.size(), 2u);
    EXPECT_TRUE(codes.insert(c.code).second) << c.code;
    EXPECT_TRUE(regions.count(c.region)) << c.region;
    EXPECT_GE(c.vp_weight, 0.0);
    EXPECT_GT(c.web_weight, 0.0);
    vp_total += c.vp_weight;
  }
  // Weights are relative (the weighted picker normalizes); they should
  // stay in the vicinity of a probability distribution for readability.
  EXPECT_GT(vp_total, 0.8);
  EXPECT_LT(vp_total, 1.2);
  // CN is present for destinations but carries no global-platform VPs.
  bool found_cn = false;
  for (const auto& c : countries()) {
    if (c.code == "CN") {
      found_cn = true;
      EXPECT_EQ(c.vp_weight, 0.0);
    }
  }
  EXPECT_TRUE(found_cn);
}

TEST(Catalogs, ThirtyProvinces) {
  EXPECT_EQ(cn_provinces().size(), 30u);  // paper: 30 of 31 covered
  std::set<std::string> unique(cn_provinces().begin(), cn_provinces().end());
  EXPECT_EQ(unique.size(), 30u);
}

TEST(Catalogs, ProviderListingMatchesTable5) {
  int global = 0;
  int cn = 0;
  int screened = 0;
  for (const auto& p : vpn_providers()) {
    if (p.resets_ttl || p.residential) {
      ++screened;
      continue;
    }
    (p.cn_platform ? cn : global) += 1;
  }
  EXPECT_EQ(global, 6);
  EXPECT_EQ(cn, 13);
  EXPECT_GE(screened, 2);  // the filters need something to reject
}

TEST(Catalogs, DnsTargetsMatchTable4) {
  int resolvers = 0;
  int self_built = 0;
  int roots = 0;
  int tlds = 0;
  std::set<std::string> addrs;
  for (const auto& t : dns_targets()) {
    switch (t.kind) {
      case DnsTargetKind::kPublicResolver: ++resolvers; break;
      case DnsTargetKind::kSelfBuilt: ++self_built; break;
      case DnsTargetKind::kRoot: ++roots; break;
      case DnsTargetKind::kTld: ++tlds; break;
    }
    if (!t.address.empty()) {
      EXPECT_TRUE(net::Ipv4Addr::parse(t.address).has_value()) << t.address;
      EXPECT_TRUE(addrs.insert(t.address).second) << "duplicate " << t.address;
    }
  }
  EXPECT_EQ(resolvers, 20);
  EXPECT_EQ(self_built, 1);
  EXPECT_EQ(roots, 13);
  EXPECT_EQ(tlds, 2);
}

TEST(Catalogs, SeedAsesCoverEveryAsThePaperNames) {
  std::set<std::uint32_t> asns;
  for (const auto& seed : seed_ases()) {
    EXPECT_TRUE(asns.insert(seed.asn).second) << seed.asn;
    EXPECT_FALSE(seed.name.empty());
  }
  // Table 3 + Section 5.2 ASes.
  for (std::uint32_t required :
       {4134u, 58563u, 137697u, 4812u, 23650u, 4808u, 203020u, 21859u, 40444u, 29988u,
        15169u}) {
    EXPECT_TRUE(asns.count(required)) << "AS" << required;
  }
}

}  // namespace
}  // namespace shadowprobe::topo
