#include "topo/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::topo {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() : net(loop) {
    TopologyConfig config;
    config.seed = 7;
    config.global_vps = 24;
    config.cn_vps = 24;
    config.web_sites = 12;
    topo = std::make_unique<Topology>(Topology::build(net, config));
  }

  sim::EventLoop loop;
  sim::Network net;
  std::unique_ptr<Topology> topo;
};

TEST_F(TopologyTest, VantagePointCountsMatchConfig) {
  EXPECT_EQ(topo->vantage_points().size(), 48u);
  int cn = 0;
  for (const auto& vp : topo->vantage_points()) {
    if (vp.cn_platform) {
      ++cn;
      EXPECT_EQ(vp.country, "CN");
      EXPECT_FALSE(vp.province.empty());
    } else {
      EXPECT_NE(vp.country, "CN");  // global VPNs lack mainland exits
    }
  }
  EXPECT_EQ(cn, 24);
}

TEST_F(TopologyTest, AllVpAddressesAreUnique) {
  std::set<net::Ipv4Addr> addrs;
  for (const auto& vp : topo->vantage_points()) {
    EXPECT_TRUE(addrs.insert(vp.addr).second) << vp.addr.str();
  }
}

TEST_F(TopologyTest, DnsTargetsUsePaperAddresses) {
  EXPECT_EQ(topo->dns_target_hosts().size(), 36u);  // 20 + 1 + 13 + 2
  const DnsTargetHost* google = topo->dns_target("Google");
  ASSERT_NE(google, nullptr);
  EXPECT_EQ(google->addr, net::Ipv4Addr::must_parse("8.8.8.8"));
  const DnsTargetHost* dns114 = topo->dns_target("114DNS");
  ASSERT_NE(dns114, nullptr);
  EXPECT_EQ(dns114->addr, net::Ipv4Addr::must_parse("114.114.114.114"));
  const DnsTargetHost* yandex = topo->dns_target("Yandex");
  ASSERT_NE(yandex, nullptr);
  EXPECT_EQ(yandex->addr, net::Ipv4Addr::must_parse("77.88.8.8"));
  int roots = 0;
  int tlds = 0;
  for (const auto& target : topo->dns_target_hosts()) {
    if (target.info.kind == DnsTargetKind::kRoot) ++roots;
    if (target.info.kind == DnsTargetKind::kTld) ++tlds;
  }
  EXPECT_EQ(roots, 13);
  EXPECT_EQ(tlds, 2);
}

TEST_F(TopologyTest, Anycast114DnsHasCnAndUsInstances) {
  const DnsTargetHost* dns114 = topo->dns_target("114DNS");
  ASSERT_NE(dns114, nullptr);
  ASSERT_EQ(dns114->anycast_instances.size(), 2u);
  std::set<std::string> countries;
  for (const auto& [country, node] : dns114->anycast_instances) countries.insert(country);
  EXPECT_TRUE(countries.count("CN"));
  EXPECT_TRUE(countries.count("US"));
}

TEST_F(TopologyTest, HoneypotsInThreeLocations) {
  ASSERT_EQ(topo->honeypots().size(), 3u);
  std::set<std::string> locations;
  for (const auto& pot : topo->honeypots()) locations.insert(pot.location);
  EXPECT_EQ(locations, (std::set<std::string>{"US", "DE", "SG"}));
}

TEST_F(TopologyTest, GeoDatabaseAttributesPaperAses) {
  const intel::GeoDatabase& geo = topo->geo();
  EXPECT_EQ(geo.asn(net::Ipv4Addr::must_parse("8.8.8.8")), 15169u);
  EXPECT_EQ(geo.country(net::Ipv4Addr::must_parse("8.8.8.8")), "US");
  // CN national gateway address belongs to CHINANET-BACKBONE.
  sim::NodeId cn_gw = topo->national_gateway("CN");
  ASSERT_NE(cn_gw, sim::kInvalidNode);
  EXPECT_EQ(geo.asn(net.address(cn_gw)), 4134u);
  EXPECT_EQ(geo.country(net.address(cn_gw)), "CN");
}

TEST_F(TopologyTest, VantagePointsGeolocateToTheirCountry) {
  const intel::GeoDatabase& geo = topo->geo();
  for (const auto& vp : topo->vantage_points()) {
    EXPECT_EQ(geo.country(vp.addr), vp.country) << vp.id;
    EXPECT_EQ(geo.asn(vp.addr), vp.asn) << vp.id;
  }
}

TEST_F(TopologyTest, CnProvincesHaveAggregationRouters) {
  for (const auto& province : cn_provinces()) {
    EXPECT_NE(topo->province_aggregation(province), sim::kInvalidNode) << province;
  }
  EXPECT_EQ(topo->province_aggregation("Atlantis"), sim::kInvalidNode);
}

TEST_F(TopologyTest, SeedObserverAsesExist) {
  for (std::uint32_t asn : {4134u, 58563u, 137697u, 40444u, 29988u, 203020u, 21859u}) {
    EXPECT_NE(topo->as_by_number(asn), nullptr) << asn;
  }
  EXPECT_EQ(topo->as_by_number(99999999u), nullptr);
}

TEST_F(TopologyTest, WebFarmCoversMandatoryDestinations) {
  EXPECT_EQ(topo->web_sites().size(), 12u);
  std::set<std::uint32_t> site_ases;
  std::set<std::string> site_countries;
  for (const auto& site : topo->web_sites()) {
    site_ases.insert(site.asn);
    site_countries.insert(site.country);
  }
  EXPECT_TRUE(site_ases.count(40444));   // Constant Contact
  EXPECT_TRUE(site_ases.count(29988));   // Rogers
  EXPECT_TRUE(site_ases.count(4134));    // Chinanet
  EXPECT_TRUE(site_countries.count("AD"));
}

/// Reachability: a datagram travels from every VP to a representative set
/// of destinations, and a reply makes it back.
TEST_F(TopologyTest, EveryVpReachesDestinationsAndBack) {
  class Echo : public sim::DatagramHandler {
   public:
    void on_datagram(sim::Network& net, sim::NodeId self,
                     const net::Ipv4Datagram& dgram) override {
      auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                          dgram.header.dst);
      if (!udp.ok()) return;
      sim::send_udp(net, self, dgram.header.dst, dgram.header.src,
                    udp.value().dst_port, udp.value().src_port, {});
    }
  } echo;
  class Count : public sim::DatagramHandler {
   public:
    void on_datagram(sim::Network&, sim::NodeId, const net::Ipv4Datagram&) override {
      ++replies;
    }
    int replies = 0;
  };

  std::vector<net::Ipv4Addr> destinations = {
      topo->dns_target("Google")->addr,
      topo->dns_target("114DNS")->addr,
      topo->dns_target("a.root")->addr,
      topo->web_sites().front().addr,
      topo->honeypots().front().addr,
  };
  // Install echo handlers on those destination nodes.
  net.set_handler(topo->dns_target("Google")->node, &echo);
  for (const auto& [country, node] : topo->dns_target("114DNS")->anycast_instances) {
    net.set_handler(node, &echo);
  }
  net.set_handler(topo->dns_target("a.root")->node, &echo);
  net.set_handler(topo->web_sites().front().node, &echo);
  net.set_handler(topo->honeypots().front().node, &echo);

  std::vector<Count> counters(topo->vantage_points().size());
  int expected = 0;
  for (std::size_t i = 0; i < topo->vantage_points().size(); ++i) {
    const auto& vp = topo->vantage_points()[i];
    net.set_handler(vp.node, &counters[i]);
    for (net::Ipv4Addr dst : destinations) {
      sim::send_udp(net, vp.node, vp.addr, dst, 4000, 4000, {});
      ++expected;
    }
  }
  loop.run();
  int total = 0;
  for (const auto& counter : counters) total += counter.replies;
  EXPECT_EQ(total, expected);
}

TEST_F(TopologyTest, AddHostInAsWiresRouting) {
  sim::NodeId host = topo->add_host_in_as(net, 4134, "extra-host");
  net::Ipv4Addr addr = net.address(host);
  EXPECT_TRUE(topo->as_by_number(4134)->prefix.contains(addr));
  EXPECT_THROW(topo->add_host_in_as(net, 424242, "nope"), std::invalid_argument);
}

TEST(TopologyScaling, ApplyScaleBoundsBelowByOne) {
  TopologyConfig config;
  config.global_vps = 10;
  config.cn_vps = 10;
  config.web_sites = 10;
  config.apply_scale(0.01);
  EXPECT_EQ(config.global_vps, 1);
  EXPECT_EQ(config.cn_vps, 1);
  EXPECT_EQ(config.web_sites, 1);
  config.apply_scale(-5.0);  // ignored
  EXPECT_EQ(config.global_vps, 1);
}

TEST(TopologyDeterminism, SameSeedSameAddressPlan) {
  TopologyConfig config;
  config.global_vps = 8;
  config.cn_vps = 8;
  config.web_sites = 6;
  sim::EventLoop loop1, loop2;
  sim::Network net1(loop1), net2(loop2);
  Topology a = Topology::build(net1, config);
  Topology b = Topology::build(net2, config);
  ASSERT_EQ(a.vantage_points().size(), b.vantage_points().size());
  for (std::size_t i = 0; i < a.vantage_points().size(); ++i) {
    EXPECT_EQ(a.vantage_points()[i].addr, b.vantage_points()[i].addr);
    EXPECT_EQ(a.vantage_points()[i].provider, b.vantage_points()[i].provider);
  }
  for (std::size_t i = 0; i < a.web_sites().size(); ++i) {
    EXPECT_EQ(a.web_sites()[i].addr, b.web_sites()[i].addr);
  }
}

}  // namespace
}  // namespace shadowprobe::topo
