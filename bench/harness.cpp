#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace shadowprobe::bench {

BenchWorld run_standard_campaign(const std::string& bench_name) {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  std::printf("== %s ==\n", bench_name.c_str());
  std::printf("substrate: %d global VPs + %d CN VPs, %d web sites, seed %llu\n",
              config.topology.global_vps, config.topology.cn_vps, config.topology.web_sites,
              static_cast<unsigned long long>(config.topology.seed));

  BenchWorld world;
  world.bed = core::Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  world.deployment = std::make_unique<shadow::ShadowDeployment>(
      shadow::deploy_standard_exhibitors(*world.bed, shadow_config));
  core::CampaignConfig campaign_config;
  campaign_config.total_duration = 25 * kDay;
  world.campaign = std::make_unique<core::Campaign>(*world.bed, campaign_config);
  world.campaign->run();
  std::printf("campaign: %zu decoys, %zu honeypot hits, %zu unsolicited requests, "
              "%d usable VPs\n\n",
              world.campaign->ledger().decoy_count(), world.bed->logbook().size(),
              world.campaign->unsolicited().size(), world.campaign->screening().usable);
  return world;
}

void paper_line(const std::string& what, const std::string& paper,
                const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

long peak_rss_kb() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long>(usage.ru_maxrss / 1024);  // macOS reports bytes
#else
  return static_cast<long>(usage.ru_maxrss);  // Linux reports KiB
#endif
#else
  return 0;
#endif
}

void PerfReport::write() const {
  const char* dir = std::getenv("SHADOWPROBE_BENCH_DIR");
  std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                     "/BENCH_" + topic_ + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"schema\": 1,\n", topic_.c_str());
  if (!context_.empty()) {
    std::fprintf(out, "  \"context\": \"%s\",\n", context_.c_str());
  }
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const PerfRun& run = runs_[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"wall_ms\": %.3f, "
                 "\"setup_ms\": %.3f, \"events_per_sec\": %.1f, "
                 "\"peak_rss_kb\": %ld, \"allocs\": %llu}%s\n",
                 run.config.c_str(), run.wall_ms, run.setup_ms, run.events_per_sec,
                 run.peak_rss_kb, static_cast<unsigned long long>(run.allocs),
                 i + 1 < runs_.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("perf: wrote %s (%zu runs)\n", path.c_str(), runs_.size());
}

}  // namespace shadowprobe::bench
