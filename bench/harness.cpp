#include "harness.h"

#include <cstdio>

namespace shadowprobe::bench {

BenchWorld run_standard_campaign(const std::string& bench_name) {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  std::printf("== %s ==\n", bench_name.c_str());
  std::printf("substrate: %d global VPs + %d CN VPs, %d web sites, seed %llu\n",
              config.topology.global_vps, config.topology.cn_vps, config.topology.web_sites,
              static_cast<unsigned long long>(config.topology.seed));

  BenchWorld world;
  world.bed = core::Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  world.deployment = std::make_unique<shadow::ShadowDeployment>(
      shadow::deploy_standard_exhibitors(*world.bed, shadow_config));
  core::CampaignConfig campaign_config;
  campaign_config.total_duration = 25 * kDay;
  world.campaign = std::make_unique<core::Campaign>(*world.bed, campaign_config);
  world.campaign->run();
  std::printf("campaign: %zu decoys, %zu honeypot hits, %zu unsolicited requests, "
              "%d usable VPs\n\n",
              world.campaign->ledger().decoy_count(), world.bed->logbook().size(),
              world.campaign->unsolicited().size(), world.campaign->screening().usable);
  return world;
}

void paper_line(const std::string& what, const std::string& paper,
                const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

}  // namespace shadowprobe::bench
