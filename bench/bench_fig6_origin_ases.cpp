// Figure 6: origin autonomous systems of the unsolicited requests triggered
// by DNS decoys to Resolver_h.
//
// Paper shapes: Google (AS15169) is a heavy origin of unsolicited DNS
// queries (exhibitors prefer Google Public DNS for their lookups); decoys
// to one resolver fan out to multiple origin ASes (114DNS: 4 ASes, ISPs and
// cloud); 5.2% of origin addresses are on the blocklist.
#include <cstdio>

#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Figure 6: origin ASes of unsolicited requests");

  auto resolver_h = world.resolver_h();
  auto origins = core::origin_ases(world.campaign->ledger(), world.campaign->unsolicited(),
                                   resolver_h, world.bed->topology().geo(),
                                   world.bed->blocklist());
  for (const auto& name : resolver_h) {
    auto it = origins.per_resolver.find(name);
    if (it == origins.per_resolver.end()) continue;
    std::printf("decoys to %s (top origin ASes of %llu unsolicited requests):\n",
                name.c_str(), static_cast<unsigned long long>(it->second.total()));
    core::TextTable table({"origin AS", "requests", "share"});
    for (const auto& [as_label, count] : it->second.top(6)) {
      table.add_row({as_label, std::to_string(count), core::percent(it->second.share(as_label))});
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::uint64_t google = 0;
  std::uint64_t total = 0;
  std::size_t multi_as = 0;
  for (const auto& [resolver, counter] : origins.per_resolver) {
    google += counter.get("AS15169 Google LLC");
    total += counter.total();
    if (counter.distinct() >= 3) ++multi_as;
  }
  bench::paper_line("Google AS15169 among unsolicited-query origins", "significant",
                    total ? core::percent(static_cast<double>(google) / total) : "n/a");
  bench::paper_line("resolvers whose decoys fan out to >=3 origin ASes", "typical (114DNS: 4)",
                    std::to_string(multi_as) + " of " +
                        std::to_string(origins.per_resolver.size()));
  bench::paper_line("blocklisted DNS-query origin addresses", "5.2%",
                    core::percent(origins.dns_origin_blocklisted));
  std::printf("\ndistinct DNS-query origin addresses: %d\n", origins.distinct_dns_origins);
  return 0;
}
