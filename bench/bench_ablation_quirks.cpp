// Ablation: benign resolver behaviours vs. true shadowing.
//
// The paper separates shadowing from two benign causes of repeated queries:
//   1. duplicate/verification re-queries (the <1 min DNS-DNS cluster) — it
//      keeps these in the data but attributes them to implementation choice;
//   2. active cache refresh at TTL expiry — it *rules this out* by checking
//      for spikes at the record TTL (3600 s) in Figure 4 and finding none.
//
// This bench runs the diagnosis both ways: with refresh disabled (default,
// like the real resolvers apparently behave) and enabled. With refresh on,
// the tell-tale TTL-aligned spike appears — demonstrating the paper's
// detection logic has teeth.
#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

struct QuirkResult {
  double ttl_window_mass = 0.0;   // CDF mass in the 55-65 min window
  double under_minute = 0.0;      // mass below one minute
  std::size_t dns_dns_requests = 0;
};

QuirkResult run(bool refresh_on_expiry, double requery_probability) {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  config.topology.apply_scale(0.5);
  config.resolver_refresh_on_expiry = refresh_on_expiry;
  config.resolver_requery_probability = requery_probability;
  auto bed = core::Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  core::CampaignConfig campaign_config;
  campaign_config.total_duration = 15 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  QuirkResult result;
  Cdf intervals;
  for (const auto& request : campaign.unsolicited()) {
    if (request.decoy_protocol != core::DecoyProtocol::kDns) continue;
    if (request.request_protocol != core::RequestProtocol::kDns) continue;
    intervals.add(to_seconds(request.interval));
    ++result.dns_dns_requests;
  }
  if (!intervals.empty()) {
    result.ttl_window_mass = intervals.at(65 * 60.0) - intervals.at(55 * 60.0);
    result.under_minute = intervals.at(60.0);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation: resolver quirks vs the Figure-4 diagnostics ==\n\n");

  QuirkResult baseline = run(false, 0.15);
  QuirkResult refresh = run(true, 0.15);
  QuirkResult no_requery = run(false, 0.0);

  core::TextTable table({"configuration", "DNS-DNS requests", "<1min mass",
                         "55-65min (TTL) mass"});
  auto row = [&](const char* name, const QuirkResult& r) {
    table.add_row({name, std::to_string(r.dns_dns_requests), core::percent(r.under_minute),
                   core::percent(r.ttl_window_mass)});
  };
  row("baseline (re-queries on, refresh off)", baseline);
  row("cache refresh at TTL expiry ON", refresh);
  row("no benign re-queries at all", no_requery);
  std::printf("%s\n", table.str().c_str());

  std::printf("reading:\n");
  std::printf("  - the paper saw no TTL-aligned spike and concluded refresh is not the\n");
  std::printf("    major cause; enabling refresh makes the 55-65min mass jump from %s\n",
              core::percent(baseline.ttl_window_mass).c_str());
  std::printf("    to %s — the diagnostic detects it.\n",
              core::percent(refresh.ttl_window_mass).c_str());
  std::printf("  - disabling re-queries removes the sub-minute cluster (%s -> %s),\n",
              core::percent(baseline.under_minute).c_str(),
              core::percent(no_requery.under_minute).c_str());
  std::printf("    leaving only true shadowing in the DNS-DNS mix.\n");
  return 0;
}
