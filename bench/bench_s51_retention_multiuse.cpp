// Section 5.1 statistics: multi-use retention of observed data.
//
// Paper shapes: over 1 hour after emission, 51% of DNS decoys (to the
// analysed resolvers) still produce more than 3 unsolicited requests and
// 2.4% more than 10; ~40% of names from Yandex decoys re-appear in HTTP(S)
// requests around 10 days later.
//
// The >3/>10 metric counts only unsolicited *DNS* queries (DNS-data reuse
// at the resolver); web probes of the decoy name feed the 10-day metric
// instead. The synthetic exhibitor fleet replays DNS more sparsely than
// the paper's real resolvers, so the measured DNS-only share sits below
// the paper's 51% — the shape (a heavy [2,6) bucket, an empty >10 tail at
// small scale) is the comparison point.
#include <cstdio>

#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Section 5.1: retention and multi-use");

  auto resolver_h = world.resolver_h();
  auto stats = core::retention_stats(world.campaign->ledger(), world.campaign->unsolicited(),
                                     resolver_h, "Yandex");
  bench::paper_line("decoys with >3 unsolicited requests after 1h", "51%",
                    core::percent(stats.over3_after_1h));
  bench::paper_line("decoys with >10 unsolicited requests after 1h", "2.4%",
                    core::percent(stats.over10_after_1h));
  bench::paper_line("Yandex names re-appearing in HTTP(S) after 10d", "~40%",
                    core::percent(stats.web_after_10d));
  std::printf("\n(denominator: %d Phase-I DNS decoys to Resolver_h)\n",
              stats.considered_decoys);

  // Request-count distribution per decoy, for context. Matches the §5.1
  // reuse metric: only unsolicited *DNS* queries count (HTTP/HTTPS probes
  // feed the web_after_10d metric instead).
  std::map<std::uint32_t, int> per_decoy;
  for (const auto& request : world.campaign->unsolicited()) {
    const auto* record = world.campaign->ledger().by_seq(request.seq);
    if (record == nullptr || record->phase2) continue;
    if (record->id.protocol != core::DecoyProtocol::kDns) continue;
    if (request.request_protocol != core::RequestProtocol::kDns) continue;
    if (request.interval > kHour) ++per_decoy[request.seq];
  }
  BucketHistogram histogram({1, 2, 4, 6, 11, 21});
  for (const auto& [seq, count] : per_decoy) histogram.add(count);
  std::printf("\nlate (>1h) DNS requests per triggering decoy:\n");
  core::TextTable table({"bucket", "decoys", "share"});
  for (std::size_t b = 0; b < histogram.buckets(); ++b) {
    table.add_row({histogram.label(b), std::to_string(histogram.count(b)),
                   core::percent(histogram.share(b))});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
