// Section 5.2: open ports of on-wire observers.
//
// Paper shapes: probing the ICMP-revealed observer addresses finds 92% with
// no open port at all; among the remainder, port 179 (BGP) is the most
// common — identifying the devices as routers between networks.
#include <cstdio>

#include <set>

#include "core/portscan.h"
#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Section 5.2: observer open ports");

  std::set<net::Ipv4Addr> observers;
  for (const auto& finding : world.campaign->findings()) {
    if (finding.observer_addr) observers.insert(*finding.observer_addr);
  }
  std::printf("scanning %zu ICMP-revealed observer addresses, %zu ports each...\n\n",
              observers.size(), core::PortScanner::default_ports().size());

  core::PortScanner scanner(world.bed->fork_rng("bench-portscan"));
  sim::NodeId node = world.bed->add_host_in_as(21859, "bench-scanner", &scanner);
  scanner.bind(world.bed->net(), node, world.bed->net().address(node));
  scanner.scan(std::vector<net::Ipv4Addr>(observers.begin(), observers.end()),
               core::PortScanner::default_ports());
  world.bed->loop().run_until(world.bed->loop().now() + kMinute);

  auto summary = scanner.summarize();
  core::TextTable table({"open port", "observers"});
  for (const auto& [port, count] : summary.open_port_counts) {
    table.add_row({std::to_string(port), std::to_string(count)});
  }
  std::printf("%s\n", table.str().c_str());
  bench::paper_line("observers with no open ports", "92%",
                    core::percent(summary.no_open_share()));
  bench::paper_line("most common open port", "179 (BGP)",
                    summary.top_open_port() == 0 ? "none"
                                                 : std::to_string(summary.top_open_port()));
  return 0;
}
