// Table 3: Top networks of on-path traffic observers, from the observer
// addresses that ICMP Time-Exceeded responses revealed during Phase II.
//
// Paper shapes: HTTP/TLS observers dominated by CHINANET-BACKBONE (AS4134,
// 44%/54%) plus CN provincial networks; the thin DNS on-wire tail sits in
// hosting networks (HostRoyale, Zenlayer) and China Unicom Beijing; 79% of
// all observer IPs geolocate to CN.
#include <cstdio>

#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Table 3: top observer ASes");

  auto table = core::observer_ases(world.campaign->findings(), world.bed->topology().geo());
  for (core::DecoyProtocol protocol :
       {core::DecoyProtocol::kDns, core::DecoyProtocol::kHttp, core::DecoyProtocol::kTls}) {
    std::printf("%s decoys:\n", core::decoy_protocol_name(protocol).c_str());
    core::TextTable rows({"AS", "name", "country", "observer IPs", "share"});
    int printed = 0;
    for (const auto& row : table.rows[protocol]) {
      rows.add_row({"AS" + std::to_string(row.asn), row.as_name, row.country,
                    std::to_string(row.observer_ips), core::percent(row.share)});
      if (++printed == 3) break;  // the paper lists the top 3 per protocol
    }
    std::printf("%s\n", rows.str().c_str());
  }

  auto top_asn = [&](core::DecoyProtocol p) -> std::string {
    if (table.rows[p].empty()) return "none";
    const auto& row = table.rows[p].front();
    return "AS" + std::to_string(row.asn) + " (" + core::percent(row.share) + ")";
  };
  bench::paper_line("top HTTP observer AS", "AS4134 (44%)",
                    top_asn(core::DecoyProtocol::kHttp));
  bench::paper_line("top TLS observer AS", "AS4134 (54%)",
                    top_asn(core::DecoyProtocol::kTls));
  bench::paper_line("observer IPs geolocating to CN", "79%",
                    core::percent(table.observer_countries.share("CN")));
  std::printf("\ntotal distinct observer IPs revealed by ICMP: %d (paper: 572)\n",
              table.total_observer_ips);
  return 0;
}
