// Post-barrier pipeline scaling: wall-clock of classification plus the full
// analysis-table pass at 1, 2 and 4 workers, over one campaign's corpus.
//
// The pipeline partitions hits by decoy seq group for classification and
// scans the unsolicited vector in per-worker chunks for the tables, so on a
// machine with N idle cores the pass should approach N× (the final
// canonical sort and the table merges are the serial fraction). Every
// worker count must export byte-identical JSON — the run verifies that too.
#include <chrono>
#include <cstdio>
#include <string>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/json_export.h"
#include "core/testbed.h"
#include "harness.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

core::TestbedConfig bench_config() {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  std::printf("== Post-barrier pipeline: classify + analyze vs worker count ==\n\n");

  auto bed = core::Testbed::create(bench_config());
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow::ShadowConfig{});
  core::Campaign campaign(*bed, core::CampaignConfig{});
  campaign.run();
  core::CampaignResult result = campaign.result();
  std::printf("corpus: %zu honeypot hits, %zu unsolicited requests\n\n",
              result.hits.size(), result.unsolicited.size());

  bench::PerfReport report("parallel_analysis");
  {
    topo::TopologyConfig topo = bench_config().topology;
    report.set_context("global_vps=" + std::to_string(topo.global_vps) +
                       ",cn_vps=" + std::to_string(topo.cn_vps) +
                       ",web_sites=" + std::to_string(topo.web_sites) +
                       ",seed=" + std::to_string(topo.seed));
  }
  const double corpus_records =
      static_cast<double>(result.hits.size() + result.unsolicited.size());

  constexpr int kReps = 3;  // best-of to damp scheduler noise
  double serial_seconds = 0.0;
  std::string serial_json;
  for (int workers : {1, 2, 4}) {
    double best = -1.0;
    std::uint64_t best_allocs = 0;
    std::string json;
    for (int rep = 0; rep < kReps; ++rep) {
      core::CampaignResult pass = result;
      std::uint64_t allocs_before = bench::allocation_count();
      auto start = std::chrono::steady_clock::now();
      pass.correlate(workers);
      json = core::export_campaign_json(*bed, pass, workers);
      double elapsed = seconds_since(start);
      if (best < 0.0 || elapsed < best) {
        best = elapsed;
        best_allocs = bench::allocation_count() - allocs_before;
      }
    }
    bench::PerfRun run;
    run.config = "workers=" + std::to_string(workers);
    run.wall_ms = best * 1000.0;
    run.events_per_sec = corpus_records / best;  // records classified+scanned per sec
    run.peak_rss_kb = bench::peak_rss_kb();
    run.allocs = best_allocs;
    report.add(std::move(run));
    if (workers == 1) {
      serial_seconds = best;
      serial_json = json;
    }
    bool identical = json == serial_json;
    std::printf("  %d worker%s %7.3fs  speedup vs serial: %.2fx  %s\n", workers,
                workers == 1 ? " " : "s", best, serial_seconds / best,
                identical ? "byte-identical JSON" : "JSON MISMATCH");
  }
  std::printf(
      "\n(speedup needs idle cores: classification runs seq-group partitions\n"
      " and the table scans run per-worker chunks concurrently; the canonical\n"
      " sort and partial merges are the serial fraction)\n");
  report.write();
  return 0;
}
