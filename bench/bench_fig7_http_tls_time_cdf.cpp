// Figure 7: cumulative distribution of the time between HTTP/TLS decoys and
// the unsolicited requests bearing their data.
//
// Paper shapes: retention is shorter than for DNS decoys (fewer requests
// arrive after days) — on-wire routing devices have limited storage, while
// destination-side observers (most TLS ones) hold data longer.
#include <cstdio>

#include "common/strutil.h"
#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Figure 7: HTTP/TLS decoy -> request time CDF");

  auto by_protocol = core::interval_cdf_by_protocol(world.campaign->unsolicited());
  const std::vector<std::pair<const char*, double>> kPoints = {
      {"1min", 60},   {"10min", 600},      {"1h", 3600},         {"6h", 6 * 3600.0},
      {"1d", 86400},  {"3d", 3 * 86400.0}, {"10d", 10 * 86400.0},
  };
  core::TextTable table({"decoy", "1min", "10min", "1h", "6h", "1d", "3d", "10d", "n"});
  for (core::DecoyProtocol protocol : {core::DecoyProtocol::kHttp, core::DecoyProtocol::kTls}) {
    auto it = by_protocol.find(protocol);
    if (it == by_protocol.end()) continue;
    std::vector<std::string> row = {core::decoy_protocol_name(protocol)};
    for (const auto& [label, seconds] : kPoints) {
      row.push_back(strprintf("%.2f", it->second.at(seconds)));
    }
    row.push_back(std::to_string(it->second.count()));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  // Comparison against DNS-decoy retention (Figure 4 counterpart).
  Cdf dns;
  for (const auto& request : world.campaign->unsolicited()) {
    if (request.decoy_protocol == core::DecoyProtocol::kDns) {
      dns.add(to_seconds(request.interval));
    }
  }
  auto after_day = [](const Cdf& cdf) { return 1.0 - cdf.at(86400.0); };
  if (by_protocol.count(core::DecoyProtocol::kHttp) && !dns.empty()) {
    bench::paper_line("HTTP-decoy requests later than 1 day",
                      "smaller than DNS",
                      core::percent(after_day(by_protocol.at(core::DecoyProtocol::kHttp))) +
                          " (DNS: " + core::percent(after_day(dns)) + ")");
  }
  if (by_protocol.count(core::DecoyProtocol::kTls) &&
      by_protocol.count(core::DecoyProtocol::kHttp)) {
    bench::paper_line("TLS-decoy tail vs HTTP (destination observers hold longer)",
                      "TLS > HTTP",
                      core::percent(after_day(by_protocol.at(core::DecoyProtocol::kTls))) +
                          " vs " +
                          core::percent(after_day(by_protocol.at(core::DecoyProtocol::kHttp))));
  }
  return 0;
}
