// Global operator new/delete replacements that count heap allocations.
//
// Linked into every bench binary (via sp_bench_harness); the count feeds
// PerfRun::allocs so BENCH_*.json tracks allocation-rate regressions on the
// hot path, not just wall-clock. The counter uses a relaxed atomic — benches
// only read totals, never order anything on it — so the hook costs one
// uncontended RMW per allocation.
//
// allocation_count() lives in this TU on purpose: a bench referencing it
// forces the linker to pull this object out of the static library, which is
// what activates the replacement operators.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace shadowprobe::bench {
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_malloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t alignment) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (posix_memalign(&ptr, alignment, size != 0 ? size : 1) != 0) return nullptr;
  return ptr;
}
}  // namespace

std::uint64_t allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace shadowprobe::bench

void* operator new(std::size_t size) {
  if (void* ptr = shadowprobe::bench::counted_malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* ptr = shadowprobe::bench::counted_malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return shadowprobe::bench::counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return shadowprobe::bench::counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* ptr = shadowprobe::bench::counted_aligned(
          size, static_cast<std::size_t>(alignment))) {
    return ptr;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* ptr = shadowprobe::bench::counted_aligned(
          size, static_cast<std::size_t>(alignment))) {
    return ptr;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return shadowprobe::bench::counted_aligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return shadowprobe::bench::counted_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
