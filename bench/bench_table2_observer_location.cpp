// Table 2: Normalized location (1-10, 10 = destination) of traffic
// observers found by the Phase-II hop-by-hop TTL sweep.
//
// Paper shapes: DNS observers essentially all at the destination (99.7%);
// HTTP observers overwhelmingly on the wire, concentrated mid-path; TLS
// split between destination (65%) and mid-path devices.
#include <cstdio>

#include "common/strutil.h"
#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Table 2: normalized observer location");

  auto locations = core::observer_locations(world.campaign->findings());
  core::TextTable table({"hops from VP", "1", "2", "3", "4", "5", "6", "7", "8", "9",
                         "10 (dest)"});
  for (core::DecoyProtocol protocol :
       {core::DecoyProtocol::kDns, core::DecoyProtocol::kHttp, core::DecoyProtocol::kTls}) {
    std::vector<std::string> row = {core::decoy_protocol_name(protocol) + " (% observers)"};
    for (int hop = 1; hop <= 10; ++hop) {
      row.push_back(strprintf("%.2f", locations.shares[protocol][hop] * 100.0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  auto at_dest = [&](core::DecoyProtocol p) { return locations.shares[p][10]; };
  bench::paper_line("DNS observers at destination", "99.7%",
                    core::percent(at_dest(core::DecoyProtocol::kDns)));
  bench::paper_line("HTTP observers on the wire", "97.7%",
                    core::percent(1.0 - at_dest(core::DecoyProtocol::kHttp)));
  bench::paper_line("TLS observers at destination", "65%",
                    core::percent(at_dest(core::DecoyProtocol::kTls)));
  std::printf("\nlocated paths: DNS %d, HTTP %d, TLS %d\n",
              locations.located_paths[core::DecoyProtocol::kDns],
              locations.located_paths[core::DecoyProtocol::kHttp],
              locations.located_paths[core::DecoyProtocol::kTls]);
  return 0;
}
