// Section 5 payload and reputation statistics: what the unsolicited HTTP
// requests try to do, and how the origin addresses fare against the IP
// blocklist.
//
// Paper shapes: >=90-95% of unsolicited HTTP requests perform directory
// enumeration of the honey website; no exploit payloads at all; origin
// addresses are heavily blocklisted — 57% (HTTP) / 72% (HTTPS) for requests
// triggered by DNS decoys, 45% / 55% for HTTP/TLS decoys, but only 5.2% of
// the DNS-query origins.
#include <cstdio>

#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Section 5: probing incentives & reputation");

  auto stats = core::incentive_stats(world.campaign->unsolicited(), world.bed->signatures(),
                                     world.bed->blocklist());
  std::printf("payload classes over %d unsolicited HTTP requests:\n", stats.http_requests);
  core::TextTable table({"class", "share"});
  for (const auto& [cls, share] : stats.payload_shares) {
    table.add_row({intel::payload_class_name(cls), core::percent(share)});
  }
  std::printf("%s\n", table.str().c_str());

  bench::paper_line("path enumeration among HTTP requests", ">=90-95%",
                    core::percent(
                        stats.payload_shares[intel::PayloadClass::kPathEnumeration]));
  bench::paper_line("exploit payloads found", "none",
                    stats.exploits_found ? "FOUND (!)" : "none");
  bench::paper_line("blocklisted HTTP origins (DNS decoys)", "57%",
                    core::percent(stats.dns_decoy_http_origin_blocklisted));
  bench::paper_line("blocklisted HTTPS origins (DNS decoys)", "72%",
                    core::percent(stats.dns_decoy_https_origin_blocklisted));
  bench::paper_line("blocklisted HTTP origins (HTTP/TLS decoys)", "45%",
                    core::percent(stats.web_decoy_http_origin_blocklisted));
  bench::paper_line("blocklisted HTTPS origins (HTTP/TLS decoys)", "55%",
                    core::percent(stats.web_decoy_https_origin_blocklisted));
  return 0;
}
