// Figure 5: breakdown of Phase-I DNS decoys per destination resolver, by
// the most telling Decoy-Request outcome and its timing.
//
// Paper shapes: ~50% of decoys to Yandex and 114DNS end in unsolicited
// HTTP/HTTPS after hours or days; resolvers beyond Resolver_h produce only
// DNS-DNS repetitions, most within one hour; >99% of Yandex decoys are
// shadowed one way or another.
#include <cstdio>

#include "common/strutil.h"
#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Figure 5: decoy outcome breakdown");

  auto combos = core::protocol_combos(world.campaign->ledger(),
                                      world.campaign->unsolicited());
  core::TextTable table({"destination", "none", "DNS-DNS <1h", "DNS-DNS >1h",
                         "DNS-HTTP(S) <1d", "DNS-HTTP(S) >1d", "decoys"});
  // Resolver_h first, then the busiest of the rest.
  std::vector<std::string> order = world.resolver_h();
  for (const char* extra : {"Google", "Cloudflare", "OpenDNS", "Quad9", "DNSPod",
                            "self-built", "a.root", ".com"}) {
    order.push_back(extra);
  }
  for (const auto& dest : order) {
    auto it = combos.shares.find(dest);
    if (it == combos.shares.end()) continue;
    std::vector<std::string> row = {dest};
    for (int o = 0; o <= static_cast<int>(core::DecoyOutcome::kWebAfterDays); ++o) {
      row.push_back(core::percent(it->second[static_cast<core::DecoyOutcome>(o)]));
    }
    row.push_back(std::to_string(combos.decoys[dest]));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  auto web_share = [&](const std::string& dest) {
    return combos.shares[dest][core::DecoyOutcome::kWebWithinDay] +
           combos.shares[dest][core::DecoyOutcome::kWebAfterDays];
  };
  bench::paper_line("Yandex decoys ending in HTTP(S) probes", "~51%",
                    core::percent(web_share("Yandex")));
  auto cn_combos = core::protocol_combos(world.campaign->ledger(),
                                         world.campaign->unsolicited(), {"CN"});
  double cn_114 = cn_combos.shares["114DNS"][core::DecoyOutcome::kWebWithinDay] +
                  cn_combos.shares["114DNS"][core::DecoyOutcome::kWebAfterDays];
  bench::paper_line("114DNS decoys ending in HTTP(S) probes (CN VPs)", "~50%",
                    core::percent(cn_114));
  bench::paper_line("Yandex decoys shadowed at all", ">99%",
                    core::percent(1.0 -
                                  combos.shares["Yandex"][core::DecoyOutcome::kNoUnsolicited]));
  bench::paper_line("Google decoys ending in HTTP(S)", "0% (DNS-DNS only)",
                    core::percent(web_share("Google")));
  return 0;
}
