// End-to-end campaign benchmark: the headline perf number.
//
// Runs the complete pipeline — substrate build, exhibitor deployment,
// two-phase campaign, classification, analysis tables, JSON export — once
// through the serial Campaign and once through the sharded CampaignEngine,
// and emits BENCH_campaign_e2e.json with wall-clock, simulator-event
// throughput, peak RSS and allocation counts for each. This is the number
// tracked per PR (ROADMAP item 5): compare against the previous commit with
// tools/bench_diff.
//
// Scale and seed come from SHADOWPROBE_SCALE / SHADOWPROBE_SEED; shard
// count for the engine run from SHADOWPROBE_SHARDS (default 2).
//
// The two multiprocess configs measure supervision: "procs=2" is a clean
// two-worker run, "procs=2,killed-worker" SIGKILLs worker 1 at the Phase-I
// command and recovers it via respawn — the delta between them is the
// recovery overhead tools/bench_diff tracks per PR.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "core/campaign.h"
#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "core/testbed.h"
#include "harness.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

#ifndef SHADOWPROBE_WORKER_BIN
#define SHADOWPROBE_WORKER_BIN ""
#endif

core::TestbedConfig bench_config() {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  return config;
}

int shards_from_env() {
  const char* raw = std::getenv("SHADOWPROBE_SHARDS");
  if (raw == nullptr || *raw == '\0') return 2;
  int shards = std::atoi(raw);
  return shards > 0 ? shards : 2;
}

core::CampaignEngine::Decorator standard_exhibitors() {
  return [](core::Testbed& replica) -> std::shared_ptr<void> {
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow::ShadowConfig{}));
  };
}

}  // namespace

int main() {
  std::printf("== Campaign end-to-end: full pipeline wall-clock ==\n\n");
  bench::PerfReport report("campaign_e2e");
  {
    topo::TopologyConfig topo = bench_config().topology;
    report.set_context("global_vps=" + std::to_string(topo.global_vps) +
                       ",cn_vps=" + std::to_string(topo.cn_vps) +
                       ",web_sites=" + std::to_string(topo.web_sites) +
                       ",seed=" + std::to_string(topo.seed));
  }

  std::size_t serial_decoys = 0;
  std::size_t serial_unsolicited = 0;
  {
    bench::WallTimer setup_timer;
    auto bed = core::Testbed::create(bench_config());
    auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow::ShadowConfig{});
    core::Campaign campaign(*bed, core::CampaignConfig{});
    double setup_ms = setup_timer.ms();
    std::uint64_t allocs_before = bench::allocation_count();
    bench::WallTimer timer;
    campaign.run();
    core::CampaignResult result = campaign.result();
    result.correlate(1);
    std::string json = core::export_campaign_json(*bed, result, 1);
    bench::PerfRun run;
    run.config = "serial";
    run.wall_ms = timer.ms();
    run.setup_ms = setup_ms;
    run.events_per_sec = static_cast<double>(bed->loop().processed()) / timer.seconds();
    run.peak_rss_kb = bench::peak_rss_kb();
    run.allocs = bench::allocation_count() - allocs_before;
    serial_decoys = result.ledger.decoy_count();
    serial_unsolicited = result.unsolicited.size();
    std::printf("  serial      %9.1fms  (setup %.1fms)  %12.0f events/s  rss %ld KiB"
                "  %llu allocs  (%zu-byte export)\n",
                run.wall_ms, run.setup_ms, run.events_per_sec, run.peak_rss_kb,
                static_cast<unsigned long long>(run.allocs), json.size());
    report.add(std::move(run));
  }

  int shards = shards_from_env();
  {
    bench::WallTimer setup_timer;
    core::CampaignEngine engine(
        bench_config(), core::CampaignConfig{}, shards,
        [](core::Testbed& replica) -> std::shared_ptr<void> {
          return std::make_shared<shadow::ShadowDeployment>(
              shadow::deploy_standard_exhibitors(replica, shadow::ShadowConfig{}));
        });
    double setup_ms = setup_timer.ms();
    std::uint64_t allocs_before = bench::allocation_count();
    bench::WallTimer timer;
    core::CampaignResult result = engine.run();
    std::string json = core::export_campaign_json(engine.primary(), result, shards);
    bench::PerfRun run;
    run.config = "shards=" + std::to_string(shards);
    run.wall_ms = timer.ms();
    run.setup_ms = setup_ms;
    run.events_per_sec =
        static_cast<double>(engine.events_processed()) / timer.seconds();
    run.peak_rss_kb = bench::peak_rss_kb();
    run.allocs = bench::allocation_count() - allocs_before;
    bool consistent = result.ledger.decoy_count() == serial_decoys &&
                      result.unsolicited.size() == serial_unsolicited;
    std::printf("  shards=%-4d %9.1fms  (setup %.1fms)  %12.0f events/s  rss %ld KiB"
                "  %llu allocs  (%zu-byte export)  %s\n",
                shards, run.wall_ms, run.setup_ms, run.events_per_sec, run.peak_rss_kb,
                static_cast<unsigned long long>(run.allocs), json.size(),
                consistent ? "consistent" : "MISMATCH");
    report.add(std::move(run));
    if (!consistent) {
      std::fprintf(stderr, "determinism contract violated: engine result differs\n");
      return 1;
    }
  }

  // Multiprocess pair: clean run vs one worker SIGKILLed at the Phase-I
  // command and respawned. Same shard count, same seed — the wall-clock
  // delta is the supervisor's recovery cost (reap + backoff + replacement
  // World build + replay).
  if (SHADOWPROBE_WORKER_BIN[0] != '\0' &&
      ::access(SHADOWPROBE_WORKER_BIN, X_OK) == 0) {
    for (const bool kill_worker : {false, true}) {
      if (kill_worker) {
        ::setenv("SHADOWPROBE_TEST_WORKER_FAULT", "phase1:kill:1", 1);
      }
      bench::WallTimer setup_timer;
      core::EngineExec exec;
      exec.shard_procs = 2;
      exec.worker_exe = SHADOWPROBE_WORKER_BIN;
      core::CampaignEngine engine(bench_config(), core::CampaignConfig{}, shards,
                                  standard_exhibitors(), exec);
      double setup_ms = setup_timer.ms();
      std::uint64_t allocs_before = bench::allocation_count();
      bench::WallTimer timer;
      core::CampaignResult result = engine.run();
      std::string json = core::export_campaign_json(engine.primary(), result, shards);
      if (kill_worker) ::unsetenv("SHADOWPROBE_TEST_WORKER_FAULT");
      bench::PerfRun run;
      run.config = kill_worker ? "procs=2,killed-worker" : "procs=2";
      run.wall_ms = timer.ms();
      run.setup_ms = setup_ms;
      run.events_per_sec =
          static_cast<double>(engine.events_processed()) / timer.seconds();
      run.peak_rss_kb = bench::peak_rss_kb();
      run.allocs = bench::allocation_count() - allocs_before;
      bool consistent = result.ledger.decoy_count() == serial_decoys &&
                        result.unsolicited.size() == serial_unsolicited;
      if (kill_worker && result.shard_stats.workers_lost == 0) {
        std::fprintf(stderr, "recovery bench: fault did not engage\n");
        return 1;
      }
      std::printf("  %-22s %7.1fms  (setup %.1fms)  %12.0f events/s  rss %ld KiB"
                  "  %llu allocs  (%zu-byte export)  %s\n",
                  run.config.c_str(), run.wall_ms, run.setup_ms, run.events_per_sec,
                  run.peak_rss_kb, static_cast<unsigned long long>(run.allocs),
                  json.size(), consistent ? "consistent" : "MISMATCH");
      report.add(std::move(run));
      if (!consistent) {
        std::fprintf(stderr,
                     "determinism contract violated: multiprocess result differs\n");
        return 1;
      }
    }
  } else {
    std::printf("  (worker binary unavailable; skipping recovery configs)\n");
  }

  report.write();
  return 0;
}
