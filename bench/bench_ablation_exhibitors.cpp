// Ablation: which exhibitor class produces which headline signal.
//
// Each run disables one ground-truth exhibitor class and reports the
// pipeline's headline numbers — the signal that collapses identifies the
// class responsible for it, confirming the analyses measure what they claim
// to measure.
#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

struct Signals {
  double yandex_ratio = 0.0;     // Figure 3 headline
  int http_wire_located = 0;     // Table 2/3 HTTP mass
  int tls_dest_located = 0;      // Table 2 TLS destination mass
  int interception_rejected = 0; // Appendix E screen hits
};

Signals run(const char* label, shadow::ShadowConfig shadow_config) {
  std::printf("  running: %s\n", label);
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  config.topology.apply_scale(0.4);
  auto bed = core::Testbed::create(config);
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  core::CampaignConfig campaign_config;
  campaign_config.total_duration = 12 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  Signals signals;
  auto ratios = core::path_ratios(campaign.ledger(), campaign.unsolicited());
  signals.yandex_ratio = ratios.total(core::DecoyProtocol::kDns, "Yandex").ratio();
  for (const auto& finding : campaign.findings()) {
    if (finding.protocol == core::DecoyProtocol::kHttp && !finding.at_destination) {
      ++signals.http_wire_located;
    }
    if (finding.protocol == core::DecoyProtocol::kTls && finding.at_destination) {
      ++signals.tls_dest_located;
    }
  }
  signals.interception_rejected = campaign.screening().rejected_interception;
  return signals;
}

}  // namespace

int main() {
  std::printf("== Ablation: exhibitor classes vs headline signals ==\n\n");

  shadow::ShadowConfig all;
  Signals baseline = run("all exhibitor classes", all);

  shadow::ShadowConfig no_resolvers = all;
  no_resolvers.resolver_shadowing = false;
  Signals without_resolvers = run("without resolver-side shadowers", no_resolvers);

  shadow::ShadowConfig no_wire = all;
  no_wire.wire_http_observers = false;
  no_wire.wire_tls_observers = false;
  Signals without_wire = run("without on-wire DPI observers", no_wire);

  shadow::ShadowConfig no_dest = all;
  no_dest.tls_destination_shadowers = false;
  Signals without_dest = run("without destination-side TLS shadowers", no_dest);

  shadow::ShadowConfig no_noise = all;
  no_noise.dns_interception_noise = false;
  Signals without_noise = run("without interception middleboxes", no_noise);

  std::printf("\n");
  core::TextTable table({"configuration", "Yandex DNS ratio", "HTTP wire observers",
                         "TLS dest observers", "VPs rejected (interception)"});
  auto row = [&](const char* name, const Signals& s) {
    table.add_row({name, core::percent(s.yandex_ratio),
                   std::to_string(s.http_wire_located), std::to_string(s.tls_dest_located),
                   std::to_string(s.interception_rejected)});
  };
  row("all classes (baseline)", baseline);
  row("- resolver shadowers", without_resolvers);
  row("- on-wire DPI", without_wire);
  row("- destination TLS", without_dest);
  row("- interception noise", without_noise);
  std::printf("%s\n", table.str().c_str());

  std::printf("reading: each row zeroes exactly its own signal — resolver shadowers\n");
  std::printf("carry Figure 3's DNS ratios, DPI taps carry Table 2/3's on-wire HTTP\n");
  std::printf("mass, destination operators carry the TLS hop-10 mass, and the\n");
  std::printf("middleboxes are what the pair-resolver screen rejects VPs for.\n");
  return 0;
}
