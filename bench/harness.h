// Shared harness for the per-table/figure reproduction benches.
//
// Every bench binary runs the same pipeline — build the substrate, deploy
// the ground-truth exhibitors, run the two-phase campaign — then prints its
// table or figure next to the paper's reference values. Scale and seed come
// from SHADOWPROBE_SCALE / SHADOWPROBE_SEED (see README).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

namespace shadowprobe::bench {

struct BenchWorld {
  std::unique_ptr<core::Testbed> bed;
  std::unique_ptr<shadow::ShadowDeployment> deployment;
  std::unique_ptr<core::Campaign> campaign;

  [[nodiscard]] core::PathRatioTable ratios() const {
    return core::path_ratios(campaign->ledger(), campaign->unsolicited());
  }
  /// Resolver_h as the pipeline derives it (top-5 by problematic ratio).
  [[nodiscard]] std::vector<std::string> resolver_h() const {
    return core::top_shadowed_resolvers(ratios(), 5);
  }
};

/// Runs the standard campaign at the environment-configured scale.
BenchWorld run_standard_campaign(const std::string& bench_name);

/// Prints a "paper vs measured" line in a uniform format.
void paper_line(const std::string& what, const std::string& paper,
                const std::string& measured);

// ---------------------------------------------------------------------------
// Machine-readable perf reporting (ROADMAP item 5: BENCH_<topic>.json).
//
// A bench builds a PerfReport, adds one PerfRun per measured configuration,
// and calls write(): the report lands as BENCH_<topic>.json in
// SHADOWPROBE_BENCH_DIR (default: the current directory). CI uploads the
// files as artifacts and tools/bench_diff compares them across commits.

struct PerfRun {
  std::string config;           ///< e.g. "shards=4" — the knob under test
  double wall_ms = 0.0;         ///< wall-clock for the measured region
  double setup_ms = 0.0;        ///< substrate/engine construction time
  double events_per_sec = 0.0;  ///< simulator events (or records) per second
  long peak_rss_kb = 0;         ///< getrusage high-water mark at sample time
  std::uint64_t allocs = 0;     ///< operator-new calls inside the region
};

class PerfReport {
 public:
  explicit PerfReport(std::string topic) : topic_(std::move(topic)) {}

  /// Free-form run context ("scale=1,seed=20240301") recorded in the file so
  /// bench_diff never compares runs of different sizes silently.
  void set_context(std::string context) { context_ = std::move(context); }

  void add(PerfRun run) { runs_.push_back(std::move(run)); }

  /// Serialises the report to BENCH_<topic>.json and prints the path.
  /// Key order and number formatting are fixed so diffs are stable.
  void write() const;

  [[nodiscard]] const std::vector<PerfRun>& runs() const noexcept { return runs_; }

 private:
  std::string topic_;
  std::string context_;
  std::vector<PerfRun> runs_;
};

/// Process-wide count of global operator-new calls. Defined in
/// alloc_hook.cpp, whose replacement operators are linked into every bench
/// binary via this symbol. Monotonic — diff across a region to attribute
/// allocations to it.
[[nodiscard]] std::uint64_t allocation_count() noexcept;

/// Peak resident set size of the process in KiB (ru_maxrss; 0 if the
/// platform has no getrusage).
[[nodiscard]] long peak_rss_kb() noexcept;

/// Steady-clock stopwatch for PerfRun::wall_ms.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }
  [[nodiscard]] double seconds() const { return ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace shadowprobe::bench
