// Shared harness for the per-table/figure reproduction benches.
//
// Every bench binary runs the same pipeline — build the substrate, deploy
// the ground-truth exhibitors, run the two-phase campaign — then prints its
// table or figure next to the paper's reference values. Scale and seed come
// from SHADOWPROBE_SCALE / SHADOWPROBE_SEED (see README).
#pragma once

#include <memory>
#include <string>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

namespace shadowprobe::bench {

struct BenchWorld {
  std::unique_ptr<core::Testbed> bed;
  std::unique_ptr<shadow::ShadowDeployment> deployment;
  std::unique_ptr<core::Campaign> campaign;

  [[nodiscard]] core::PathRatioTable ratios() const {
    return core::path_ratios(campaign->ledger(), campaign->unsolicited());
  }
  /// Resolver_h as the pipeline derives it (top-5 by problematic ratio).
  [[nodiscard]] std::vector<std::string> resolver_h() const {
    return core::top_shadowed_resolvers(ratios(), 5);
  }
};

/// Runs the standard campaign at the environment-configured scale.
BenchWorld run_standard_campaign(const std::string& bench_name);

/// Prints a "paper vs measured" line in a uniform format.
void paper_line(const std::string& what, const std::string& paper,
                const std::string& measured);

}  // namespace shadowprobe::bench
