// Figure 4: cumulative distribution of the time between an initial DNS
// decoy (to Resolver_h) and the unsolicited requests bearing its data.
//
// Paper shapes: a sizable cluster within one minute (benign DNS-DNS
// re-queries), a long tail out to days; no spike at the record TTL (3600s)
// or other hourly marks; all unsolicited HTTP(S) arrive at least 1h later.
#include <cstdio>

#include "common/strutil.h"
#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Figure 4: DNS decoy -> request time CDF");

  auto resolver_h = world.resolver_h();
  auto cdfs = core::interval_cdf_by_resolver(world.campaign->ledger(),
                                             world.campaign->unsolicited(), resolver_h);

  const std::vector<std::pair<const char*, double>> kPoints = {
      {"1s", 1},          {"1min", 60},        {"10min", 600},
      {"1h", 3600},       {"1h+TTL", 7200},    {"1d", 86400},
      {"3d", 3 * 86400.0}, {"10d", 10 * 86400.0}, {"20d", 20 * 86400.0},
  };
  core::TextTable table({"resolver", "1s", "1min", "10min", "1h", "1h+TTL", "1d", "3d",
                         "10d", "20d", "n"});
  for (const auto& name : resolver_h) {
    auto it = cdfs.find(name);
    if (it == cdfs.end()) continue;
    std::vector<std::string> row = {name};
    for (const auto& [label, seconds] : kPoints) {
      row.push_back(strprintf("%.2f", it->second.at(seconds)));
    }
    row.push_back(std::to_string(it->second.count()));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  if (cdfs.count("Yandex")) {
    const Cdf& yandex = cdfs.at("Yandex");
    bench::paper_line("Yandex requests arriving after 1 day", "large share",
                      core::percent(1.0 - yandex.at(86400.0)));
    // No TTL-aligned spike: the CDF mass between 55-65 min should not jump.
    double around_ttl = yandex.at(65 * 60.0) - yandex.at(55 * 60.0);
    bench::paper_line("mass in the 55-65min window (TTL=3600 spike?)", "no spike",
                      core::percent(around_ttl));
  }
  // Unsolicited HTTP(S) triggered by DNS decoys arrive at least 1h later.
  SimDuration earliest_web = 0;
  bool have_web = false;
  for (const auto& request : world.campaign->unsolicited()) {
    if (request.decoy_protocol != core::DecoyProtocol::kDns) continue;
    if (request.request_protocol == core::RequestProtocol::kDns) continue;
    if (!have_web || request.interval < earliest_web) {
      earliest_web = request.interval;
      have_web = true;
    }
  }
  bench::paper_line("earliest unsolicited HTTP(S) after a DNS decoy", ">= 1h",
                    have_web ? format_duration(earliest_web) : "none");

  // The other 15 resolvers: nearly all requests inside a minute.
  Cdf others;
  std::set<std::string> top(resolver_h.begin(), resolver_h.end());
  for (const auto& request : world.campaign->unsolicited()) {
    const auto& path = world.campaign->ledger().path(request.path_id);
    if (path.protocol != core::DecoyProtocol::kDns) continue;
    if (path.dest_kind != core::DestKind::kPublicResolver) continue;
    if (top.count(path.dest_name) > 0) continue;
    others.add(to_seconds(request.interval));
  }
  if (!others.empty()) {
    bench::paper_line("non-Resolver_h requests within 1 minute", "95%",
                      core::percent(others.at(60.0)));
  }
  return 0;
}
