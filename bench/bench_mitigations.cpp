// Section 6 (discussion) as an experiment: what each proposed mitigation
// actually changes about the shadowing landscape.
//
//   - TLS 1.3 ECH: hides the true SNI from on-path devices; destination
//     operators (who terminate TLS) still see it.
//   - Encrypted DNS (DoT/DoH): blinds on-wire DNS observers, but "does not
//     mitigate data collection by the destination server, which decodes the
//     message and sees everything" — resolver-side shadowing is unchanged.
//   - Oblivious DNS (ODoH): splits visibility of origin and content — the
//     destination still shadows the names, but can no longer attribute them
//     to the querying client.
//
// Four campaigns run back-to-back: baseline, ECH, DoT, ODoH.
#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

struct MitigationResult {
  double yandex_dns_ratio = 0.0;   // destination-side DNS shadowing
  int wire_dns_located = 0;        // on-wire DNS observers located
  int wire_tls_located = 0;        // on-wire TLS observers located
  int dest_tls_located = 0;        // destination-located TLS observers
  std::size_t https_hits = 0;      // unsolicited HTTPS (the probes still flow)
  double client_exposed = 0.0;     // share of resolver-side observations that
                                   // recorded a real VP as the client
};

MitigationResult run(const char* label, core::DnsDecoyTransport transport, bool ech) {
  std::printf("-- campaign: %s --\n", label);
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  config.topology.apply_scale(0.5);
  auto bed = core::Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);

  core::CampaignConfig campaign_config;
  campaign_config.total_duration = 20 * kDay;
  campaign_config.dns_transport = transport;
  campaign_config.tls_decoys_use_ech = ech;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  MitigationResult result;
  auto ratios = core::path_ratios(campaign.ledger(), campaign.unsolicited());
  result.yandex_dns_ratio = ratios.total(core::DecoyProtocol::kDns, "Yandex").ratio();
  for (const auto& finding : campaign.findings()) {
    if (finding.protocol == core::DecoyProtocol::kDns && !finding.at_destination) {
      ++result.wire_dns_located;
    }
    if (finding.protocol == core::DecoyProtocol::kTls) {
      if (finding.at_destination) {
        ++result.dest_tls_located;
      } else {
        ++result.wire_tls_located;
      }
    }
  }
  for (const auto& request : campaign.unsolicited()) {
    if (request.request_protocol == core::RequestProtocol::kHttps) ++result.https_hits;
  }
  // Ground-truth peek (mitigation efficacy, not pipeline output): what did
  // the destination-side DNS shadowers record as the querying client?
  std::set<net::Ipv4Addr> vp_addrs;
  for (const auto* vp : campaign.active_vps()) vp_addrs.insert(vp->addr);
  std::uint64_t exposed = 0;
  std::uint64_t total = 0;
  for (const auto& exhibitor : deployment.exhibitors) {
    if (exhibitor.label.rfind("resolver:", 0) != 0) continue;
    const auto& store = exhibitor.exhibitor->store();
    for (std::size_t i = 0; i < store.size(); ++i) {
      ++total;
      if (vp_addrs.count(store.at(i).client) > 0) ++exposed;
    }
  }
  result.client_exposed = total == 0 ? 0.0 : static_cast<double>(exposed) / total;
  std::printf("   done: %zu unsolicited requests\n\n", campaign.unsolicited().size());
  return result;
}

}  // namespace

int main() {
  std::printf("== Section 6: mitigation experiments ==\n\n");
  MitigationResult baseline = run("baseline (plain DNS, clear SNI)",
                                  core::DnsDecoyTransport::kPlain, false);
  MitigationResult ech = run("TLS ECH", core::DnsDecoyTransport::kPlain, true);
  MitigationResult dot = run("encrypted DNS (DoT)", core::DnsDecoyTransport::kEncrypted,
                             false);
  MitigationResult odoh = run("oblivious DNS (ODoH)", core::DnsDecoyTransport::kOblivious,
                              false);

  core::TextTable table({"metric", "baseline", "ECH", "DoT", "ODoH"});
  auto pct = [](double v) { return core::percent(v); };
  table.add_row({"Yandex DNS shadowing ratio", pct(baseline.yandex_dns_ratio),
                 pct(ech.yandex_dns_ratio), pct(dot.yandex_dns_ratio),
                 pct(odoh.yandex_dns_ratio)});
  table.add_row({"on-wire DNS observers located", std::to_string(baseline.wire_dns_located),
                 std::to_string(ech.wire_dns_located), std::to_string(dot.wire_dns_located),
                 std::to_string(odoh.wire_dns_located)});
  table.add_row({"on-wire TLS observers located", std::to_string(baseline.wire_tls_located),
                 std::to_string(ech.wire_tls_located), std::to_string(dot.wire_tls_located),
                 std::to_string(odoh.wire_tls_located)});
  table.add_row({"destination TLS observers", std::to_string(baseline.dest_tls_located),
                 std::to_string(ech.dest_tls_located), std::to_string(dot.dest_tls_located),
                 std::to_string(odoh.dest_tls_located)});
  table.add_row({"client identity exposed to resolver-side shadowers",
                 pct(baseline.client_exposed), pct(ech.client_exposed),
                 pct(dot.client_exposed), pct(odoh.client_exposed)});
  std::printf("%s\n", table.str().c_str());

  std::printf("paper (Section 6) expectations:\n");
  std::printf("  - ECH blinds on-wire TLS observers; destination operators still see SNI\n");
  std::printf("  - encrypted DNS does NOT reduce destination-side (resolver) shadowing\n");
  std::printf("  - oblivious relaying keeps the shadowing but strips client identity\n");
  return 0;
}
