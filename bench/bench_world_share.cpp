// bench_world_share: memory proof of the World / ShardState split.
//
// Pre-refactor, every CampaignEngine shard rebuilt the entire substrate —
// topology, routing tables, zone data, signature/blocklist databases — so
// peak RSS grew linearly with --shards. With the shared World, shards only
// own their live state (event loop, server instances, ledgers), so RSS at 8
// shards must stay near-flat versus 1 shard. This bench enforces that (the
// acceptance bound is 2×) and re-verifies, on the pinned golden substrate,
// that the shared-World engine still exports the golden bytes for every
// shard × analysis-worker layout, with the replica-per-shard engine run
// last as the memory contrast.
//
// Deliberately pinned (scale 0.25, seed 20240301, 6-day campaign) rather
// than SHADOWPROBE_SCALE-driven: the run doubles as the byte-identity check
// against tests/data/golden_campaign.json.
//
// Peak RSS (ru_maxrss) is process-monotonic, so run order matters: the
// shared-World runs go first (1 shard, then 8), the replica contrast last —
// it would otherwise inflate the shared readings.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "core/world.h"
#include "harness.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

#ifndef SHADOWPROBE_SOURCE_DIR
#error "bench_world_share must be compiled with SHADOWPROBE_SOURCE_DIR"
#endif

namespace {

core::TestbedConfig pinned_config() {
  core::TestbedConfig config;
  config.topology.apply_scale(0.25);
  config.topology.seed = 20240301;
  return config;
}

core::CampaignConfig pinned_campaign(int analysis_workers) {
  core::CampaignConfig config;
  config.total_duration = 6 * kDay;
  config.analysis_workers = analysis_workers;
  return config;
}

core::CampaignEngine::Decorator exhibitors() {
  return [](core::Testbed& replica) -> std::shared_ptr<void> {
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow::ShadowConfig{}));
  };
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct RunOutcome {
  std::string json;
  long peak_rss_kb = 0;
};

RunOutcome run_layout(bench::PerfReport& report, const std::string& label,
                      core::SubstrateMode mode, int shards, int workers) {
  std::uint64_t allocs_before = bench::allocation_count();
  bench::WallTimer setup_timer;
  core::CampaignEngine engine(pinned_config(), pinned_campaign(workers), shards,
                              exhibitors(), mode);
  double setup_ms = setup_timer.ms();
  bench::WallTimer timer;
  core::CampaignResult result = engine.run();
  RunOutcome outcome;
  outcome.json = core::export_campaign_json(engine.primary(), result, workers);
  bench::PerfRun run;
  run.config = label;
  run.wall_ms = timer.ms();
  run.setup_ms = setup_ms;
  run.events_per_sec = static_cast<double>(engine.events_processed()) / timer.seconds();
  run.peak_rss_kb = bench::peak_rss_kb();
  run.allocs = bench::allocation_count() - allocs_before;
  outcome.peak_rss_kb = run.peak_rss_kb;
  std::printf("  %-18s %9.1fms  (setup %7.1fms)  peak rss %8ld KiB  %llu allocs\n",
              label.c_str(), run.wall_ms, run.setup_ms, run.peak_rss_kb,
              static_cast<unsigned long long>(run.allocs));
  report.add(std::move(run));
  return outcome;
}

}  // namespace

int main() {
  std::printf("== World sharing: peak RSS vs shard count (pinned golden substrate) ==\n\n");
  bench::PerfReport report("world_share");
  report.set_context("pinned scale=0.25,seed=20240301,days=6");

  const char* golden_path = SHADOWPROBE_SOURCE_DIR "/tests/data/golden_campaign.json";
  std::string golden = read_file(golden_path);
  if (golden.empty()) {
    std::fprintf(stderr, "missing golden file %s (regenerate via ctest -R "
                 "GoldenCampaign with SHADOWPROBE_REGEN_GOLDEN=1)\n", golden_path);
    return 1;
  }

  int failures = 0;
  // Shared-World runs first (monotonic RSS; see header comment).
  RunOutcome shared1 = run_layout(report, "shared,shards=1",
                                  core::SubstrateMode::kSharedWorld, 1, 1);
  RunOutcome shared8 = run_layout(report, "shared,shards=8",
                                  core::SubstrateMode::kSharedWorld, 8, 2);
  RunOutcome replica8 = run_layout(report, "replica,shards=8",
                                   core::SubstrateMode::kReplicaPerShard, 8, 1);

  for (const auto& [label, json] :
       {std::pair<const char*, const std::string&>{"shared,shards=1", shared1.json},
        {"shared,shards=8", shared8.json},
        {"replica,shards=8", replica8.json}}) {
    if (json != golden) {
      std::fprintf(stderr, "BYTE-IDENTITY VIOLATION: %s export (%zu bytes) differs "
                   "from golden (%zu bytes)\n", label, json.size(), golden.size());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("\n  all three layouts export the golden bytes (%zu bytes)\n",
                golden.size());
  }

  if (shared1.peak_rss_kb > 0 && shared8.peak_rss_kb > 0) {
    double ratio = static_cast<double>(shared8.peak_rss_kb) /
                   static_cast<double>(shared1.peak_rss_kb);
    double contrast = replica8.peak_rss_kb > 0
                          ? static_cast<double>(replica8.peak_rss_kb) /
                                static_cast<double>(shared1.peak_rss_kb)
                          : 0.0;
    std::printf("  shared RSS @8 / @1: %.2fx (bound 2.00x); replica @8: %.2fx\n",
                ratio, contrast);
    if (ratio > 2.0) {
      std::fprintf(stderr, "RSS VIOLATION: shared-World 8-shard peak RSS is %.2fx "
                   "the 1-shard peak (> 2x) — the shards are not sharing the "
                   "World\n", ratio);
      ++failures;
    }
  } else {
    std::printf("  (no getrusage on this platform — RSS bound not checked)\n");
  }

  report.write();
  return failures == 0 ? 0 : 1;
}
