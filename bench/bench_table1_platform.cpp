// Table 1: Capabilities of the VPN measurement platform — providers, VP
// addresses, ASes, and countries/provinces per platform half, after the
// screening filters (Appendix C/E) ran. Also dumps the provider listing
// (Table 5 context).
#include <cstdio>

#include "harness.h"
#include "topo/data.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Table 1: VPN measurement platform");

  auto rows = core::summarize_platform(world.campaign->active_vps());
  core::TextTable table({"group", "providers", "IPs", "ASes", "countries/provinces"});
  for (const auto& row : rows) {
    table.add_row({row.group, std::to_string(row.providers), std::to_string(row.ips),
                   std::to_string(row.ases), std::to_string(row.regions)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("shape checks against the paper (absolute counts scale with "
              "SHADOWPROBE_SCALE; the paper platform is 2,179 + 2,185 VPs):\n");
  bench::paper_line("platform halves roughly equal in size", "2179 vs 2185",
                    std::to_string(rows[0].ips) + " vs " + std::to_string(rows[1].ips));
  bench::paper_line("global providers / CN providers", "6 / 13",
                    std::to_string(rows[0].providers) + " / " +
                        std::to_string(rows[1].providers));
  bench::paper_line("CN provinces covered", "30 of 31", std::to_string(rows[1].regions));

  const auto& screening = world.campaign->screening();
  std::printf("\nscreening (Appendix C/E): %d candidates -> %d usable "
              "(%d residential, %d TTL-mangling, %d DNS-intercepted removed)\n",
              screening.candidates, screening.usable, screening.rejected_residential,
              screening.rejected_ttl_mangling, screening.rejected_interception);

  // Table 6 context: the capability survey that motivated building a new
  // VPN platform — only VPN-based, volunteer-free VPs support hop-by-hop
  // tracerouting over application protocols with custom IP TTLs.
  std::printf("\nplatform survey (Table 6 context):\n");
  core::TextTable survey({"platform", "volunteer-free", "non-residential", "DNS/HTTP/TLS",
                          "custom TTL"});
  survey.add_row({"Ark / RIPE Atlas (crowdsourcing)", "no", "no", "partial", "no"});
  survey.add_row({"OONI (crowdsourcing)", "no", "no", "yes", "yes"});
  survey.add_row({"Satellite-Iris (scanners)", "yes", "-", "DNS only", "no"});
  survey.add_row({"BrightData / ProxyRack (proxies)", "yes", "no", "partial", "no"});
  survey.add_row({"WARP (VPN, Cloudflare ASes only)", "yes", "yes", "yes", "yes"});
  survey.add_row({"ICLab (VPN, not public)", "partial", "yes", "yes", "yes"});
  survey.add_row({"Tor", "no", "no", "yes", "no"});
  survey.add_row({"this work (VPN)", "yes", "yes", "yes", "yes"});
  std::printf("%s\n", survey.str().c_str());

  std::printf("provider catalog (Table 5 context):\n");
  core::TextTable providers({"provider", "platform", "accepted"});
  for (const auto& p : topo::vpn_providers()) {
    providers.add_row({p.name, p.cn_platform ? "China" : "Global",
                       (p.resets_ttl || p.residential) ? "rejected" : "yes"});
  }
  std::printf("%s", providers.str().c_str());
  return 0;
}
