// Table 4: the DNS destinations decoys are sent to — 20 public resolvers at
// their real primary addresses, the self-built control resolver, 13 root
// servers, and 2 TLD servers — plus a live reachability check of each from
// the platform.
#include <cstdio>

#include "dnssrv/resolver.h"
#include "harness.h"
#include "topo/data.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Table 4: DNS destination servers");

  core::TextTable table({"type", "name", "IP", "AS", "decoys answered"});
  const auto& ledger = world.campaign->ledger();
  // Decoys answered: how many Phase-I DNS decoys to this destination got a
  // response back at the VP (reachability evidence).
  std::map<std::string, std::pair<int, int>> answered;  // name -> (responded, sent)
  for (const auto& decoy : ledger.decoys()) {
    if (decoy.phase2 || decoy.id.protocol != core::DecoyProtocol::kDns) continue;
    const auto& path = ledger.path(decoy.path_id);
    auto& cell = answered[path.dest_name];
    ++cell.second;
    if (decoy.dest_responded) ++cell.first;
  }
  auto kind_name = [](topo::DnsTargetKind kind) {
    switch (kind) {
      case topo::DnsTargetKind::kPublicResolver: return "Public resolver";
      case topo::DnsTargetKind::kSelfBuilt: return "Self-built resolver";
      case topo::DnsTargetKind::kRoot: return "Root server";
      case topo::DnsTargetKind::kTld: return "TLD server";
    }
    return "?";
  };
  for (const auto& target : world.bed->topology().dns_target_hosts()) {
    auto cell = answered[target.info.name];
    table.add_row({kind_name(target.info.kind), target.info.name, target.addr.str(),
                   "AS" + std::to_string(target.asn),
                   std::to_string(cell.first) + "/" + std::to_string(cell.second)});
  }
  std::printf("%s\n", table.str().c_str());

  int resolvers = 0;
  int roots = 0;
  int tlds = 0;
  for (const auto& target : world.bed->topology().dns_target_hosts()) {
    switch (target.info.kind) {
      case topo::DnsTargetKind::kPublicResolver: ++resolvers; break;
      case topo::DnsTargetKind::kRoot: ++roots; break;
      case topo::DnsTargetKind::kTld: ++tlds; break;
      default: break;
    }
  }
  bench::paper_line("public resolvers / roots / TLDs", "20 / 13 / 2",
                    std::to_string(resolvers) + " / " + std::to_string(roots) + " / " +
                        std::to_string(tlds));
  return 0;
}
