// Ablation: the Appendix-E platform screens.
//
// What happens when the pair-resolver interception screen and the TTL-canary
// screen are skipped: VPs behind interception middleboxes and TTL-mangling
// providers enter the measurement, corrupting both phases — interception
// answers decoys from spoofed addresses mid-path (biasing dest_ttl and hence
// observer location), and TTL mangling flattens the Phase-II sweep.
#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

struct ScreenResult {
  int usable_vps = 0;
  int rejected = 0;
  int dns_findings = 0;
  int dns_at_destination = 0;
  double short_dest_paths = 0.0;  // DNS findings whose dest_ttl < 4 hops
                                  // (a spoofed answer arrived mid-path)
};

ScreenResult run(bool screening) {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  config.topology.apply_scale(0.5);
  auto bed = core::Testbed::create(config);
  shadow::ShadowConfig shadow_config;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  core::CampaignConfig campaign_config;
  campaign_config.screening = screening;
  campaign_config.total_duration = 15 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  ScreenResult result;
  result.usable_vps = campaign.screening().usable;
  result.rejected = campaign.screening().candidates - campaign.screening().usable;
  int short_paths = 0;
  for (const auto& finding : campaign.findings()) {
    if (finding.protocol != core::DecoyProtocol::kDns) continue;
    ++result.dns_findings;
    if (finding.at_destination) ++result.dns_at_destination;
    if (finding.dest_ttl < 4) ++short_paths;
  }
  if (result.dns_findings > 0) {
    result.short_dest_paths = static_cast<double>(short_paths) / result.dns_findings;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation: Appendix-E screening on/off ==\n\n");
  ScreenResult with = run(true);
  ScreenResult without = run(false);

  core::TextTable table({"metric", "screened (paper)", "unscreened"});
  table.add_row({"usable VPs", std::to_string(with.usable_vps),
                 std::to_string(without.usable_vps)});
  table.add_row({"rejected VPs", std::to_string(with.rejected),
                 std::to_string(without.rejected)});
  table.add_row({"located DNS observers", std::to_string(with.dns_findings),
                 std::to_string(without.dns_findings)});
  table.add_row({"  at destination",
                 core::percent(with.dns_findings
                                   ? static_cast<double>(with.dns_at_destination) /
                                         with.dns_findings
                                   : 0.0),
                 core::percent(without.dns_findings
                                   ? static_cast<double>(without.dns_at_destination) /
                                         without.dns_findings
                                   : 0.0)});
  table.add_row({"  with implausibly short paths (<4 hops)",
                 core::percent(with.short_dest_paths),
                 core::percent(without.short_dest_paths)});
  std::printf("%s\n", table.str().c_str());

  std::printf("reading: the unscreened platform keeps TTL-mangling and intercepted\n");
  std::printf("VPs; intercepted paths get answers from spoofed addresses before the\n");
  std::printf("decoy reaches the real resolver, which shows up as implausibly short\n");
  std::printf("'destination' distances — the location bias Appendix E removes.\n");
  return 0;
}
