// Shard scaling: wall-clock of the full campaign under the sharded engine
// at 1, 2 and 4 shards, with the serial Campaign as the reference point.
//
// With idle cores the engine approaches N× on the emission phases
// (screening and the merge/classify barrier are the serial fraction). Even
// on a single busy core shards=4 must beat the serial run: each shard's
// event heap holds only its own VPs' timers, so every push/pop walks a
// log-factor smaller heap, and the stealing scheduler (the default) keeps
// ragged phases from serialising on the slowest shard. That expectation is
// a hard gate here — the bench exits non-zero if shards=4 under the
// stealing scheduler fails to beat serial — and CI runs it as such.
//
// The run also re-verifies the determinism contract end to end: every
// shard count and scheduler must produce the same decoy count, hit count
// and unsolicited count.
#include <cstdio>
#include <string>

#include "core/campaign.h"
#include "core/campaign_engine.h"
#include "core/testbed.h"
#include "harness.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

core::TestbedConfig bench_config() {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  return config;
}

core::CampaignEngine::Decorator exhibitors() {
  return [](core::Testbed& replica) -> std::shared_ptr<void> {
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow::ShadowConfig{}));
  };
}

struct Measurement {
  double setup_seconds = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  long peak_rss_kb = 0;  ///< sampled before result copies inflate the high water
  std::uint64_t allocs = 0;
  std::size_t decoys = 0;
  std::size_t hits = 0;
  std::size_t unsolicited = 0;
};

Measurement run_serial() {
  Measurement m;
  std::uint64_t allocs_before = bench::allocation_count();
  bench::WallTimer setup;
  auto bed = core::Testbed::create(bench_config());
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow::ShadowConfig{});
  m.setup_seconds = setup.seconds();
  core::Campaign campaign(*bed, core::CampaignConfig{});
  bench::WallTimer timer;
  campaign.run();
  m.wall_seconds = timer.seconds();
  m.events_per_sec = static_cast<double>(bed->loop().processed()) / m.wall_seconds;
  m.peak_rss_kb = bench::peak_rss_kb();
  m.allocs = bench::allocation_count() - allocs_before;
  core::CampaignResult result = campaign.result();
  m.decoys = result.ledger.decoy_count();
  m.hits = result.hits.size();
  m.unsolicited = result.unsolicited.size();
  return m;
}

Measurement run_engine(int shards, core::SchedulerMode scheduler) {
  Measurement m;
  std::uint64_t allocs_before = bench::allocation_count();
  core::EngineExec exec;
  exec.scheduler = scheduler;
  bench::WallTimer setup;
  core::CampaignEngine engine(bench_config(), core::CampaignConfig{}, shards,
                              exhibitors(), exec);
  m.setup_seconds = setup.seconds();
  bench::WallTimer timer;
  core::CampaignResult result = engine.run();
  m.wall_seconds = timer.seconds();
  m.events_per_sec = static_cast<double>(engine.events_processed()) / m.wall_seconds;
  m.peak_rss_kb = bench::peak_rss_kb();
  m.allocs = bench::allocation_count() - allocs_before;
  m.decoys = result.ledger.decoy_count();
  m.hits = result.hits.size();
  m.unsolicited = result.unsolicited.size();
  return m;
}

void add_run(bench::PerfReport& report, const std::string& config,
             const Measurement& m) {
  bench::PerfRun run;
  run.config = config;
  run.wall_ms = m.wall_seconds * 1000.0;
  run.setup_ms = m.setup_seconds * 1000.0;
  run.events_per_sec = m.events_per_sec;
  run.peak_rss_kb = m.peak_rss_kb;
  run.allocs = m.allocs;
  report.add(std::move(run));
}

}  // namespace

int main() {
  std::printf("== Shard scaling: campaign wall-clock vs shard count ==\n\n");
  bench::PerfReport report("shard_scaling");
  {
    topo::TopologyConfig topo = bench_config().topology;
    report.set_context("global_vps=" + std::to_string(topo.global_vps) +
                       ",cn_vps=" + std::to_string(topo.cn_vps) +
                       ",web_sites=" + std::to_string(topo.web_sites) +
                       ",seed=" + std::to_string(topo.seed));
  }

  Measurement serial = run_serial();
  add_run(report, "serial", serial);
  std::printf("  serial           %7.2fs  %zu decoys, %zu hits\n", serial.wall_seconds,
              serial.decoys, serial.hits);

  bool consistent = true;
  double one_shard_seconds = serial.wall_seconds;
  Measurement steal4;
  for (int shards : {1, 2, 4}) {
    Measurement m = run_engine(shards, core::SchedulerMode::kSteal);
    add_run(report, "shards=" + std::to_string(shards), m);
    if (shards == 1) one_shard_seconds = m.wall_seconds;
    if (shards == 4) steal4 = m;
    consistent = consistent && m.decoys == serial.decoys && m.hits == serial.hits &&
                 m.unsolicited == serial.unsolicited;
    std::printf("  %d shard%s (steal) %7.2fs  speedup vs 1-shard: %.2fx  %s\n", shards,
                shards == 1 ? " " : "s", m.wall_seconds,
                one_shard_seconds / m.wall_seconds,
                consistent ? "consistent" : "MISMATCH");
  }

  // Scheduler contrast at the widest layout: same work, static deal.
  Measurement static4 = run_engine(4, core::SchedulerMode::kStatic);
  add_run(report, "shards=4+static", static4);
  consistent = consistent && static4.decoys == serial.decoys &&
               static4.hits == serial.hits &&
               static4.unsolicited == serial.unsolicited;
  std::printf("  4 shards (static)%7.2fs  vs steal: %.2fx  %s\n",
              static4.wall_seconds, static4.wall_seconds / steal4.wall_seconds,
              consistent ? "consistent" : "MISMATCH");

  report.write();
  if (!consistent) {
    std::printf("\nFAIL: shard layouts disagree on campaign results\n");
    return 1;
  }

  // Hard gate: the default scheduler at shards=4 must beat the serial
  // campaign, idle cores or not (smaller per-shard event heaps + stealing).
  // One re-measure absorbs scheduler noise on a loaded machine.
  double gate_serial = serial.wall_seconds;
  double gate_steal = steal4.wall_seconds;
  if (gate_steal >= gate_serial) {
    std::printf("\n  gate retry: shards=4 %.2fs vs serial %.2fs, re-measuring...\n",
                gate_steal, gate_serial);
    gate_serial = run_serial().wall_seconds;
    gate_steal = run_engine(4, core::SchedulerMode::kSteal).wall_seconds;
  }
  if (gate_steal >= gate_serial) {
    std::printf("\nFAIL: shards=4 (steal) %.2fs did not beat serial %.2fs\n",
                gate_steal, gate_serial);
    return 1;
  }
  std::printf("\n  gate: shards=4 (steal) %.2fs < serial %.2fs\n", gate_steal,
              gate_serial);
  return 0;
}
