// Shard scaling: wall-clock of the full campaign under the sharded engine
// at 1, 2 and 4 shards, with the serial Campaign as the reference point.
//
// Each shard simulates only its own VPs' traffic, so on a machine with N
// idle cores the engine should approach N× on the emission phases (the
// screening hour and the merge/classify barrier are the serial fraction).
// The run also re-verifies the determinism contract end to end: every
// shard count must produce the same decoy count, hit count and unsolicited
// count.
#include <chrono>
#include <cstdio>
#include <string>

#include "core/campaign.h"
#include "core/campaign_engine.h"
#include "core/testbed.h"
#include "harness.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

core::TestbedConfig bench_config() {
  core::TestbedConfig config;
  config.topology = topo::TopologyConfig::from_env();
  return config;
}

core::CampaignEngine::Decorator exhibitors() {
  return [](core::Testbed& replica) -> std::shared_ptr<void> {
    return std::make_shared<shadow::ShadowDeployment>(
        shadow::deploy_standard_exhibitors(replica, shadow::ShadowConfig{}));
  };
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  std::printf("== Shard scaling: campaign wall-clock vs shard count ==\n\n");
  bench::PerfReport report("shard_scaling");
  {
    topo::TopologyConfig topo = bench_config().topology;
    report.set_context("global_vps=" + std::to_string(topo.global_vps) +
                       ",cn_vps=" + std::to_string(topo.cn_vps) +
                       ",web_sites=" + std::to_string(topo.web_sites) +
                       ",seed=" + std::to_string(topo.seed));
  }

  double serial_seconds;
  std::size_t serial_decoys;
  {
    auto bed = core::Testbed::create(bench_config());
    auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow::ShadowConfig{});
    core::Campaign campaign(*bed, core::CampaignConfig{});
    std::uint64_t allocs_before = bench::allocation_count();
    auto start = std::chrono::steady_clock::now();
    campaign.run();
    serial_seconds = seconds_since(start);
    serial_decoys = campaign.ledger().decoy_count();
    std::printf("  serial    %7.2fs  %zu decoys, %zu hits\n", serial_seconds,
                serial_decoys, bed->logbook().size());
    bench::PerfRun run;
    run.config = "serial";
    run.wall_ms = serial_seconds * 1000.0;
    run.events_per_sec = static_cast<double>(bed->loop().processed()) / serial_seconds;
    run.peak_rss_kb = bench::peak_rss_kb();
    run.allocs = bench::allocation_count() - allocs_before;
    report.add(std::move(run));
  }

  double one_shard_seconds = serial_seconds;
  std::size_t reference_decoys = 0;
  std::size_t reference_hits = 0;
  std::size_t reference_unsolicited = 0;
  for (int shards : {1, 2, 4}) {
    core::CampaignEngine engine(bench_config(), core::CampaignConfig{}, shards,
                                exhibitors());
    std::uint64_t allocs_before = bench::allocation_count();
    auto start = std::chrono::steady_clock::now();
    core::CampaignResult result = engine.run();
    double elapsed = seconds_since(start);
    bench::PerfRun run;
    run.config = "shards=" + std::to_string(shards);
    run.wall_ms = elapsed * 1000.0;
    run.events_per_sec = static_cast<double>(engine.events_processed()) / elapsed;
    run.peak_rss_kb = bench::peak_rss_kb();
    run.allocs = bench::allocation_count() - allocs_before;
    report.add(std::move(run));
    if (shards == 1) {
      one_shard_seconds = elapsed;
      reference_decoys = result.ledger.decoy_count();
      reference_hits = result.hits.size();
      reference_unsolicited = result.unsolicited.size();
    }
    bool consistent = result.ledger.decoy_count() == reference_decoys &&
                      result.hits.size() == reference_hits &&
                      result.unsolicited.size() == reference_unsolicited;
    std::printf("  %d shard%s %7.2fs  speedup vs 1-shard: %.2fx  %s\n", shards,
                shards == 1 ? " " : "s", elapsed, one_shard_seconds / elapsed,
                consistent ? "consistent" : "MISMATCH");
  }
  std::printf(
      "\n(speedup needs idle cores: each shard runs its VP partition on its own\n"
      " worker thread; screening + the Phase-II barrier are the serial part)\n");
  report.write();
  return 0;
}
