// Micro-benchmarks (google-benchmark) for the hot codecs and engine paths:
// the campaign pushes every decoy through these encoders/decoders, so their
// throughput bounds how large a campaign a given machine can simulate.
#include <benchmark/benchmark.h>

#include "core/decoy.h"
#include "net/dns.h"
#include "net/http.h"
#include "net/ipv4.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/event_loop.h"
#include "sim/routing.h"

using namespace shadowprobe;

namespace {

void BM_Ipv4EncodeDecode(benchmark::State& state) {
  net::Ipv4Header header;
  header.src = net::Ipv4Addr(10, 0, 0, 1);
  header.dst = net::Ipv4Addr(8, 8, 8, 8);
  Bytes payload(64, 0xAB);
  for (auto _ : state) {
    Bytes wire = header.encode(BytesView(payload));
    auto decoded = net::decode_ipv4(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_Ipv4EncodeDecode);

void BM_DnsQueryEncodeDecode(benchmark::State& state) {
  core::DecoyId id;
  id.vp = net::Ipv4Addr(20, 0, 0, 1);
  id.dst = net::Ipv4Addr(8, 8, 8, 8);
  id.seq = 1234;
  net::DnsMessage query = net::DnsMessage::query(77, core::decoy_domain(id),
                                                 net::DnsType::kA);
  for (auto _ : state) {
    Bytes wire = query.encode();
    auto decoded = net::DnsMessage::decode(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DnsQueryEncodeDecode);

void BM_DnsResponseWithCompression(benchmark::State& state) {
  net::DnsMessage response;
  net::DnsName owner = net::DnsName::must_parse("abcdef.www.shadowprobe-exp.com");
  response.questions.push_back({owner, net::DnsType::kA});
  for (int i = 0; i < 3; ++i) {
    response.answers.push_back(net::DnsRecord::a(owner, net::Ipv4Addr(20, 30, 0, 1)));
  }
  for (auto _ : state) {
    Bytes wire = response.encode();
    auto decoded = net::DnsMessage::decode(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DnsResponseWithCompression);

void BM_HttpRequestEncodeDecode(benchmark::State& state) {
  net::HttpRequest request;
  request.target = "/admin";
  request.headers.add("Host", "abcdef.www.shadowprobe-exp.com");
  request.headers.add("User-Agent", "bench/1.0");
  for (auto _ : state) {
    Bytes wire = request.encode();
    auto decoded = net::HttpRequest::decode(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_HttpRequestEncodeDecode);

void BM_TlsClientHelloEncodeDecode(benchmark::State& state) {
  net::TlsClientHello hello;
  hello.cipher_suites = {0x1301, 0x1302, 0x1303};
  hello.set_sni("abcdef.www.shadowprobe-exp.com");
  hello.set_supported_versions({0x0304, 0x0303});
  for (auto _ : state) {
    Bytes wire = hello.encode_record();
    auto decoded = net::TlsClientHello::decode_record(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_TlsClientHelloEncodeDecode);

void BM_DecoyLabelRoundTrip(benchmark::State& state) {
  core::DecoyId id;
  id.time_sec = 1234567;
  id.vp = net::Ipv4Addr(45, 32, 1, 9);
  id.dst = net::Ipv4Addr(114, 114, 114, 114);
  id.ttl = 12;
  id.seq = 98765;
  for (auto _ : state) {
    std::string label = core::encode_decoy_label(id);
    auto decoded = core::decode_decoy_label(label);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecoyLabelRoundTrip);

void BM_RoutingLookup(benchmark::State& state) {
  sim::RoutingTable table;
  for (int i = 0; i < state.range(0); ++i) {
    table.add(net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(i) << 16), 16),
              static_cast<sim::NodeId>(i));
  }
  table.set_default(0);
  std::uint32_t probe = 0;
  for (auto _ : state) {
    auto hop = table.lookup(net::Ipv4Addr(probe));
    benchmark::DoNotOptimize(hop);
    probe += 0x00010007;
  }
}
BENCHMARK(BM_RoutingLookup)->Arg(16)->Arg(128)->Arg(512);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    long sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule(i % 37, [&sink] { ++sink; });
    }
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

}  // namespace

BENCHMARK_MAIN();
