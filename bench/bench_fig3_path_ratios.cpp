// Figure 3: ratio of client-server paths subject to traffic shadowing, per
// destination, split into CN-platform and global-platform vantage points.
//
// Paper shapes: DNS decoys are far more susceptible than HTTP/TLS; Yandex,
// 114DNS and One DNS exceed 70%; 114DNS is high only from CN VPs; roots,
// TLDs and the self-built resolver are clean; HTTP/TLS problematic paths
// concentrate on destinations in CN, AD, US, CA, with CN slightly ahead.
#include <cstdio>

#include "harness.h"

using namespace shadowprobe;

int main() {
  auto world = bench::run_standard_campaign("Figure 3: problematic path ratios");

  auto ratios = world.ratios();
  std::printf("DNS decoys (per destination resolver):\n");
  core::TextTable dns({"destination", "global VPs", "CN VPs", "all paths"});
  for (const auto& dest : ratios.destinations_by_ratio(core::DecoyProtocol::kDns)) {
    auto global = ratios.group(core::DecoyProtocol::kDns, dest, false);
    auto cn = ratios.group(core::DecoyProtocol::kDns, dest, true);
    auto total = ratios.total(core::DecoyProtocol::kDns, dest);
    dns.add_row({dest, core::percent(global.ratio()), core::percent(cn.ratio()),
                 core::percent(total.ratio())});
  }
  std::printf("%s\n", dns.str().c_str());

  for (core::DecoyProtocol protocol : {core::DecoyProtocol::kHttp, core::DecoyProtocol::kTls}) {
    std::printf("%s decoys (per destination country, top 10):\n",
                core::decoy_protocol_name(protocol).c_str());
    core::TextTable web({"dest country", "global VPs", "CN VPs", "all paths"});
    int printed = 0;
    for (const auto& dest : ratios.destinations_by_ratio(protocol)) {
      auto global = ratios.group(protocol, dest, false);
      auto cn = ratios.group(protocol, dest, true);
      auto total = ratios.total(protocol, dest);
      web.add_row({dest, core::percent(global.ratio()), core::percent(cn.ratio()),
                   core::percent(total.ratio())});
      if (++printed == 10) break;
    }
    std::printf("%s\n", web.str().c_str());
  }

  auto total_ratio = [&](core::DecoyProtocol protocol) {
    core::PathRatioCell all;
    for (const auto& dest : ratios.destinations_by_ratio(protocol)) {
      auto cell = ratios.total(protocol, dest);
      all.paths += cell.paths;
      all.problematic += cell.problematic;
    }
    return all.ratio();
  };
  bench::paper_line("Yandex ratio", ">70% (~99%)",
                    core::percent(ratios.total(core::DecoyProtocol::kDns, "Yandex").ratio()));
  bench::paper_line("114DNS from CN VPs", "~85%",
                    core::percent(ratios.group(core::DecoyProtocol::kDns, "114DNS", true).ratio()));
  bench::paper_line("114DNS from global VPs", "low",
                    core::percent(ratios.group(core::DecoyProtocol::kDns, "114DNS", false).ratio()));
  bench::paper_line("roots/TLDs/self-built", "0%",
                    core::percent(ratios.total(core::DecoyProtocol::kDns, "self-built").ratio()));
  bench::paper_line("HTTP paths problematic overall", "<10%",
                    core::percent(total_ratio(core::DecoyProtocol::kHttp)));
  bench::paper_line("TLS paths problematic overall", "<10%",
                    core::percent(total_ratio(core::DecoyProtocol::kTls)));
  std::printf("\nResolver_h (top-5 shadowed resolvers): ");
  for (const auto& name : world.resolver_h()) std::printf("%s; ", name.c_str());
  std::printf("\n  paper: Yandex; 114DNS; One DNS; DNS PAI; VERCARA\n");
  return 0;
}
