// bench_diff: compare two BENCH_<topic>.json files run-by-run.
//
//   bench_diff OLD.json NEW.json [--threshold 10] [--strict]
//
// Runs are matched by their "config" string; each match prints the old and
// new wall_ms plus the relative delta, and a delta worse than the threshold
// (default 10%) is flagged REGRESSION. Peak RSS is compared the same way
// (fixed 10% threshold, flagged RSS-REGRESSION) so memory growth — e.g. a
// shard substrate quietly losing its World sharing — fails a --strict run
// even when wall-clock stays flat. The tool is informational by default
// — exit code 0 regardless — because bench runners in CI are noisy shared
// machines; --strict turns a flagged regression into exit 1 for local
// before/after checks. Comparing files whose "context" differs (different
// scale or seed) warns and skips the verdict: the numbers are not
// commensurable.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Run {
  std::string config;
  double wall_ms = 0.0;
  double setup_ms = 0.0;
  double events_per_sec = 0.0;
  long peak_rss_kb = 0;
  std::uint64_t allocs = 0;
};

struct Report {
  std::string context;
  std::vector<Run> runs;
};

// Extracts the value of `"key": "..."` or `"key": <number>` after `from`.
// Minimal by design: PerfReport::write emits fixed key order and formatting,
// so positional scanning is exact for these files.
std::string string_field(const std::string& text, const std::string& key,
                         std::size_t from = 0) {
  std::string needle = "\"" + key + "\": \"";
  std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return {};
  at += needle.size();
  std::size_t end = text.find('"', at);
  return end == std::string::npos ? std::string{} : text.substr(at, end - at);
}

double number_field(const std::string& text, const std::string& key,
                    std::size_t from = 0) {
  std::string needle = "\"" + key + "\": ";
  std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

bool load(const char* path, Report& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  out.context = string_field(text, "context");
  std::size_t at = 0;
  while ((at = text.find("{\"config\"", at)) != std::string::npos) {
    Run run;
    run.config = string_field(text, "config", at);
    run.wall_ms = number_field(text, "wall_ms", at);
    run.setup_ms = number_field(text, "setup_ms", at);  // 0.0 in schema-1 files
    run.events_per_sec = number_field(text, "events_per_sec", at);
    run.peak_rss_kb = static_cast<long>(number_field(text, "peak_rss_kb", at));
    run.allocs = static_cast<std::uint64_t>(number_field(text, "allocs", at));
    out.runs.push_back(std::move(run));
    ++at;
  }
  return true;
}

const Run* find_run(const Report& report, const std::string& config) {
  for (const Run& run : report.runs) {
    if (run.config == config) return &run;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 10.0;
  bool strict = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff OLD.json NEW.json [--threshold PCT] [--strict]\n");
    return 2;
  }

  Report before;
  Report after;
  if (!load(files[0], before) || !load(files[1], after)) return 2;

  bool comparable = before.context == after.context;
  if (!comparable) {
    std::printf("note: contexts differ (old \"%s\" vs new \"%s\") — no verdicts\n",
                before.context.c_str(), after.context.c_str());
  }

  // Peak RSS drifts far less than wall-clock on shared runners, so its
  // threshold stays fixed at 10% rather than following --threshold.
  constexpr double kRssThresholdPct = 10.0;
  int regressions = 0;
  std::printf("%-16s %12s %12s %9s %12s %12s %9s\n", "config", "old ms", "new ms",
              "delta", "old rss", "new rss", "delta");
  for (const Run& now : after.runs) {
    const Run* then = find_run(before, now.config);
    if (then == nullptr) {
      std::printf("%-16s %12s %12.1f %9s %12s %12ld %9s  (new config)\n",
                  now.config.c_str(), "-", now.wall_ms, "-", "-", now.peak_rss_kb, "-");
      continue;
    }
    double delta_pct =
        then->wall_ms > 0.0 ? (now.wall_ms / then->wall_ms - 1.0) * 100.0 : 0.0;
    // RSS verdicts need both sides measured (0 = platform without getrusage).
    double rss_delta_pct = (then->peak_rss_kb > 0 && now.peak_rss_kb > 0)
                               ? (static_cast<double>(now.peak_rss_kb) /
                                      static_cast<double>(then->peak_rss_kb) -
                                  1.0) * 100.0
                               : 0.0;
    bool slower = comparable && delta_pct > threshold_pct;
    bool fatter = comparable && then->peak_rss_kb > 0 && now.peak_rss_kb > 0 &&
                  rss_delta_pct > kRssThresholdPct;
    if (slower || fatter) ++regressions;
    std::printf("%-16s %12.1f %12.1f %+8.1f%% %11ldK %11ldK %+8.1f%%  %s%s\n",
                now.config.c_str(), then->wall_ms, now.wall_ms, delta_pct,
                then->peak_rss_kb, now.peak_rss_kb, rss_delta_pct,
                slower ? "REGRESSION " : "", fatter ? "RSS-REGRESSION" : "");
  }
  if (regressions > 0) {
    std::printf("\n%d config(s) worse than threshold (wall %.0f%%, rss %.0f%%)\n",
                regressions, threshold_pct, kRssThresholdPct);
  }
  return strict && regressions > 0 ? 1 : 0;
}
