// bench_diff: compare two BENCH_<topic>.json files run-by-run.
//
//   bench_diff OLD.json NEW.json [--threshold 10] [--strict]
//
// Runs are matched by their "config" string; each match prints the old and
// new wall_ms plus the relative delta, and a delta worse than the threshold
// (default 10%) is flagged REGRESSION. Peak RSS is compared the same way
// (fixed 10% threshold, flagged RSS-REGRESSION) so memory growth — e.g. a
// shard substrate quietly losing its World sharing — fails a --strict run
// even when wall-clock stays flat. The tool is informational by default
// — exit code 0 regardless — because bench runners in CI are noisy shared
// machines; --strict turns a flagged regression into exit 1 for local
// before/after checks. A baseline written before a field existed (schema-1
// files predate setup_ms/peak_rss_kb) prints "n/a" for that column and
// renders no verdict — never a miscompare against a neighbouring run's
// value. Comparing files whose "context" differs (different
// scale or seed) warns and skips the verdict: the numbers are not
// commensurable.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// A numeric field that may be absent in files written by an older
/// PerfReport schema. Absent is distinct from measured-zero: an absent field
/// prints "n/a" and never participates in a verdict.
struct Field {
  bool present = false;
  double value = 0.0;
};

struct Run {
  std::string config;
  Field wall_ms;
  Field setup_ms;        // absent in schema-1 files
  Field events_per_sec;
  Field peak_rss_kb;     // absent in schema-1 files
  Field allocs;
};

struct Report {
  std::string context;
  std::vector<Run> runs;
};

// Extracts the value of `"key": "..."` or `"key": <number>` in
// [from, until). Minimal by design: PerfReport::write emits fixed
// formatting, so positional scanning is exact for these files. The `until`
// bound keeps a key that is absent from one run object (older schema) from
// silently matching the next run's field — a miscompare is worse than no
// number.
std::string string_field(const std::string& text, const std::string& key,
                         std::size_t from = 0,
                         std::size_t until = std::string::npos) {
  std::string needle = "\"" + key + "\": \"";
  std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return {};
  at += needle.size();
  std::size_t end = text.find('"', at);
  return end == std::string::npos || end >= until ? std::string{}
                                                  : text.substr(at, end - at);
}

Field number_field(const std::string& text, const std::string& key,
                   std::size_t from, std::size_t until) {
  std::string needle = "\"" + key + "\": ";
  std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return {};
  return {true, std::strtod(text.c_str() + at + needle.size(), nullptr)};
}

bool load(const char* path, Report& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  out.context = string_field(text, "context");
  std::size_t at = 0;
  while ((at = text.find("{\"config\"", at)) != std::string::npos) {
    // Run objects never nest, so the next '}' closes this one.
    std::size_t end = text.find('}', at);
    if (end == std::string::npos) end = text.size();
    Run run;
    run.config = string_field(text, "config", at, end);
    run.wall_ms = number_field(text, "wall_ms", at, end);
    run.setup_ms = number_field(text, "setup_ms", at, end);
    run.events_per_sec = number_field(text, "events_per_sec", at, end);
    run.peak_rss_kb = number_field(text, "peak_rss_kb", at, end);
    run.allocs = number_field(text, "allocs", at, end);
    out.runs.push_back(std::move(run));
    ++at;
  }
  return true;
}

long rss_kb(const Run& run) { return static_cast<long>(run.peak_rss_kb.value); }

/// Formats an RSS cell: "n/a" for a pre-schema-2 file, "<n>K" otherwise.
std::string rss_cell(const Run& run) {
  if (!run.peak_rss_kb.present) return "n/a";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%ldK", rss_kb(run));
  return buffer;
}

const Run* find_run(const Report& report, const std::string& config) {
  for (const Run& run : report.runs) {
    if (run.config == config) return &run;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 10.0;
  bool strict = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff OLD.json NEW.json [--threshold PCT] [--strict]\n");
    return 2;
  }

  Report before;
  Report after;
  if (!load(files[0], before) || !load(files[1], after)) return 2;

  bool comparable = before.context == after.context;
  if (!comparable) {
    std::printf("note: contexts differ (old \"%s\" vs new \"%s\") — no verdicts\n",
                before.context.c_str(), after.context.c_str());
  }

  // Peak RSS drifts far less than wall-clock on shared runners, so its
  // threshold stays fixed at 10% rather than following --threshold.
  constexpr double kRssThresholdPct = 10.0;
  int regressions = 0;
  std::printf("%-16s %12s %12s %9s %12s %12s %9s\n", "config", "old ms", "new ms",
              "delta", "old rss", "new rss", "delta");
  for (const Run& now : after.runs) {
    const Run* then = find_run(before, now.config);
    if (then == nullptr) {
      std::printf("%-16s %12s %12.1f %9s %12s %12s %9s  (new config)\n",
                  now.config.c_str(), "-", now.wall_ms.value, "-", "-",
                  rss_cell(now).c_str(), "-");
      continue;
    }
    double delta_pct = then->wall_ms.value > 0.0
                           ? (now.wall_ms.value / then->wall_ms.value - 1.0) * 100.0
                           : 0.0;
    // RSS verdicts need both sides measured: present in both files (an old
    // baseline predates the field) and nonzero (0 = platform without
    // getrusage). Everything else prints "n/a" and renders no verdict.
    bool rss_measured = then->peak_rss_kb.present && now.peak_rss_kb.present &&
                        rss_kb(*then) > 0 && rss_kb(now) > 0;
    double rss_delta_pct = rss_measured
                               ? (static_cast<double>(rss_kb(now)) /
                                      static_cast<double>(rss_kb(*then)) -
                                  1.0) * 100.0
                               : 0.0;
    bool slower = comparable && delta_pct > threshold_pct;
    bool fatter = comparable && rss_measured && rss_delta_pct > kRssThresholdPct;
    if (slower || fatter) ++regressions;
    char rss_delta[16] = "n/a";
    if (rss_measured) {
      std::snprintf(rss_delta, sizeof(rss_delta), "%+.1f%%", rss_delta_pct);
    }
    std::printf("%-16s %12.1f %12.1f %+8.1f%% %12s %12s %9s  %s%s\n",
                now.config.c_str(), then->wall_ms.value, now.wall_ms.value, delta_pct,
                rss_cell(*then).c_str(), rss_cell(now).c_str(), rss_delta,
                slower ? "REGRESSION " : "", fatter ? "RSS-REGRESSION" : "");
  }
  if (regressions > 0) {
    std::printf("\n%d config(s) worse than threshold (wall %.0f%%, rss %.0f%%)\n",
                regressions, threshold_pct, kRssThresholdPct);
  }
  return strict && regressions > 0 ? 1 : 0;
}
