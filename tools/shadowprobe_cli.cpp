// shadowprobe CLI: run the full measurement campaign from the command line
// and print reports or export JSON.
//
//   shadowprobe_cli run [options]
//   shadowprobe_cli --shard-worker     (internal: campaign worker process;
//                                       speaks the wire protocol on
//                                       stdin/stdout, spawned by --shard-procs)
//
//   options:
//     --scale X            platform scale multiplier (default 1.0)
//     --seed N             master seed (default 20240301)
//     --days N             capture horizon in simulated days (default 25)
//     --shards N           run the sharded engine with N VP partitions
//                          (default: SHADOWPROBE_SHARDS env var, else serial);
//                          results are byte-identical for any N
//     --shard-procs P      distribute the shards over P worker processes
//                          (default: SHADOWPROBE_SHARD_PROCS env var, else
//                          in-process threads); implies the engine (1 shard
//                          if unsharded); results are byte-identical to the
//                          in-process run for any P
//     --worker-retries N   respawn budget per lost worker process before its
//                          shards degrade to in-process execution (default:
//                          SHADOWPROBE_WORKER_RETRIES env var, else 2);
//                          recovery never changes campaign output
//     --analysis-workers N worker threads for the post-barrier pipeline
//                          (classification + analysis tables; default:
//                          SHADOWPROBE_ANALYSIS_WORKERS env var, else 1);
//                          results are byte-identical for any N
//     --fault-profile S    deterministic fault-injection spec, e.g.
//                          "lossy" or "loss=0.05,hp-outage=US@30h+12h"
//                          (default: SHADOWPROBE_FAULT_PROFILE env var, else
//                          none); implies the engine (1 shard if unsharded);
//                          results are byte-identical for any shard count
//     --transport T        dns decoy transport: plain | dot | odoh
//     --ech                send TLS decoys with Encrypted Client Hello
//     --no-screening       skip the Appendix-E platform screens
//     --report R           all | fig3 | table2 | table3 | retention (default all)
//     --json FILE          write the full analysis as JSON
//     --trace N            print the first N packets crossing the CN gateway
//                          (with --shards, shard 0's replica)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/campaign_engine.h"
#include "core/cli.h"
#include "core/json_export.h"
#include "core/report.h"
#include "core/shard_worker.h"
#include "core/testbed.h"
#include "shadow/profiles.h"
#include "sim/trace.h"

using namespace shadowprobe;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: shadowprobe_cli run [--scale X] [--seed N] [--days N]\n"
               "         [--shards N] [--shard-procs P] [--worker-retries N]\n"
               "         [--scheduler static|steal]\n"
               "         [--analysis-workers N]\n"
               "         [--fault-profile SPEC]\n"
               "         [--transport plain|dot|odoh] [--ech]\n"
               "         [--no-screening]\n"
               "         [--report all|fig3|table2|table3|retention] [--json FILE]\n"
               "         [--trace N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--shard-worker") == 0) {
    // Worker mode: the controller process speaks the wire protocol to us on
    // stdin/stdout. The decorator must match the one `run` uses below so
    // both sides instantiate the same ground-truth deployment.
    core::ShardWorkerOptions worker_options;
    // --spawn-gen N: which incarnation of this worker slot we are (the
    // supervisor increments it per respawn; the test fault harness keys off
    // it). Absent for a hand-launched worker.
    for (int i = 2; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--spawn-gen") == 0) {
        worker_options.spawn_gen = std::atoi(argv[i + 1]);
      }
    }
    shadow::ShadowConfig shadow_config;
    return core::run_shard_worker(
        0, 1,
        [shadow_config](core::Testbed& replica) -> std::shared_ptr<void> {
          return std::make_shared<shadow::ShadowDeployment>(
              shadow::deploy_standard_exhibitors(replica, shadow_config));
        },
        worker_options);
  }
  if (argc < 2 || std::strcmp(argv[1], "run") != 0) return usage();
  std::vector<std::string> args(argv + 2, argv + argc);
  auto parsed = core::parse_cli_options(args, core::CliEnvironment::from_process());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
    return usage();
  }
  const core::CliOptions& options = parsed.value();

  core::TestbedConfig config;
  config.topology.seed = options.seed;
  config.topology.apply_scale(options.scale);

  core::CampaignConfig campaign_config;
  campaign_config.total_duration = static_cast<SimDuration>(options.days) * kDay;
  campaign_config.dns_transport = options.transport;
  campaign_config.tls_decoys_use_ech = options.ech;
  campaign_config.screening = options.screening;
  campaign_config.analysis_workers = options.analysis_workers;
  campaign_config.faults = options.faults;

  shadow::ShadowConfig shadow_config;
  sim::TraceRecorder trace;

  std::unique_ptr<core::Testbed> bed;             // serial-path substrate
  std::unique_ptr<core::CampaignEngine> engine;   // sharded-path substrate
  shadow::ShadowDeployment deployment;            // serial-path ground truth
  core::CampaignResult result;
  core::Testbed* context = nullptr;  // substrate the reports/export read from

  if (options.shards > 0) {
    // worker_exe left empty: the backend re-execs this binary via
    // /proc/self/exe (argv[0] may be PATH-relative).
    core::EngineExec exec;
    exec.shard_procs = options.shard_procs;
    exec.scheduler = options.scheduler;
    exec.supervision.worker_retries = options.worker_retries;
    exec.supervision.heartbeat_ms = options.worker_heartbeat_ms;
    exec.supervision.stall_timeout_ms = options.worker_stall_ms;
    engine = std::make_unique<core::CampaignEngine>(
        config, campaign_config, options.shards,
        [shadow_config](core::Testbed& replica) -> std::shared_ptr<void> {
          return std::make_shared<shadow::ShadowDeployment>(
              shadow::deploy_standard_exhibitors(replica, shadow_config));
        },
        exec);
    context = &engine->primary();
    if (options.trace > 0) {
      context->net().add_tap(context->topology().national_gateway("CN"), &trace);
    }
    result = engine->run();
  } else {
    bed = core::Testbed::create(config);
    deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
    context = bed.get();
    if (options.trace > 0) {
      bed->net().add_tap(bed->topology().national_gateway("CN"), &trace);
    }
    core::Campaign campaign(*bed, campaign_config);
    campaign.run();
    result = campaign.result();
  }

  // Every table the printers and the JSON export need, computed once.
  core::CampaignAnalysis analysis =
      core::analyze_campaign(*context, result, options.analysis_workers);

  core::print_reports(options.report, result, analysis);

  if (options.trace > 0) {
    std::printf("first packets across the CN national gateway:\n%s\n",
                trace.dump(static_cast<std::size_t>(options.trace)).c_str());
  }

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    out << core::export_campaign_json(*context, result, analysis);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
