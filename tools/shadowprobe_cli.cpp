// shadowprobe CLI: run the full measurement campaign from the command line
// and print reports or export JSON.
//
//   shadowprobe_cli run [options]
//
//   options:
//     --scale X          platform scale multiplier (default 1.0)
//     --seed N           master seed (default 20240301)
//     --days N           capture horizon in simulated days (default 25)
//     --shards N         run the sharded engine with N VP partitions
//                        (default: SHADOWPROBE_SHARDS env var, else serial);
//                        results are byte-identical for any N
//     --transport T      dns decoy transport: plain | dot | odoh
//     --ech              send TLS decoys with Encrypted Client Hello
//     --no-screening     skip the Appendix-E platform screens
//     --report R         all | fig3 | table2 | table3 | retention (default all)
//     --json FILE        write the full analysis as JSON
//     --trace N          print the first N packets crossing the CN gateway
//                        (with --shards, shard 0's replica)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"
#include "sim/trace.h"

using namespace shadowprobe;

namespace {

struct CliOptions {
  double scale = 1.0;
  std::uint64_t seed = 20240301;
  int days = 25;
  int shards = 0;  // 0 = serial Campaign, >= 1 = CampaignEngine
  core::DnsDecoyTransport transport = core::DnsDecoyTransport::kPlain;
  bool ech = false;
  bool screening = true;
  std::string report = "all";
  std::string json_path;
  int trace = 0;
};

int usage() {
  std::fprintf(stderr,
               "usage: shadowprobe_cli run [--scale X] [--seed N] [--days N]\n"
               "         [--shards N] [--transport plain|dot|odoh] [--ech]\n"
               "         [--no-screening]\n"
               "         [--report all|fig3|table2|table3|retention] [--json FILE]\n"
               "         [--trace N]\n");
  return 2;
}

bool parse_options(int argc, char** argv, CliOptions& options) {
  if (const char* env = std::getenv("SHADOWPROBE_SHARDS")) {
    options.shards = std::atoi(env);
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      options.scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--days") {
      const char* v = next();
      if (!v) return false;
      options.days = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      options.shards = std::atoi(v);
    } else if (arg == "--transport") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "plain") == 0) {
        options.transport = core::DnsDecoyTransport::kPlain;
      } else if (std::strcmp(v, "dot") == 0) {
        options.transport = core::DnsDecoyTransport::kEncrypted;
      } else if (std::strcmp(v, "odoh") == 0) {
        options.transport = core::DnsDecoyTransport::kOblivious;
      } else {
        return false;
      }
    } else if (arg == "--ech") {
      options.ech = true;
    } else if (arg == "--no-screening") {
      options.screening = false;
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return false;
      options.report = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      options.json_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      options.trace = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void print_fig3(core::Testbed& bed, const core::CampaignResult& result) {
  (void)bed;
  auto ratios = core::path_ratios(result.ledger, result.unsolicited);
  std::printf("problematic path ratios (DNS, per destination):\n");
  core::TextTable table({"destination", "global VPs", "CN VPs", "all"});
  int printed = 0;
  for (const auto& dest : ratios.destinations_by_ratio(core::DecoyProtocol::kDns)) {
    table.add_row({dest,
                   core::percent(ratios.group(core::DecoyProtocol::kDns, dest, false).ratio()),
                   core::percent(ratios.group(core::DecoyProtocol::kDns, dest, true).ratio()),
                   core::percent(ratios.total(core::DecoyProtocol::kDns, dest).ratio())});
    if (++printed == 12) break;
  }
  std::printf("%s\n", table.str().c_str());
}

void print_table2(const core::CampaignResult& result) {
  auto locations = core::observer_locations(result.findings);
  std::printf("observer location (normalized hops, 10 = destination):\n");
  for (const auto& [protocol, shares] : locations.shares) {
    std::printf("  %-4s:", core::decoy_protocol_name(protocol).c_str());
    for (int hop = 1; hop <= 10; ++hop) {
      std::printf(" %5.1f%%", (shares.count(hop) ? shares.at(hop) : 0.0) * 100);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void print_table3(core::Testbed& bed, const core::CampaignResult& result) {
  auto table = core::observer_ases(result.findings, bed.topology().geo());
  std::printf("top observer ASes (%d observer IPs, %s in CN):\n",
              table.total_observer_ips,
              core::percent(table.observer_countries.share("CN")).c_str());
  for (const auto& [protocol, rows] : table.rows) {
    std::size_t printed = 0;
    for (const auto& row : rows) {
      std::printf("  %-4s AS%-7u %-44s %3d IPs (%s)\n",
                  core::decoy_protocol_name(protocol).c_str(), row.asn,
                  row.as_name.c_str(), row.observer_ips, core::percent(row.share).c_str());
      if (++printed == 3) break;
    }
  }
  std::printf("\n");
}

void print_retention(const core::CampaignResult& result) {
  auto ratios = core::path_ratios(result.ledger, result.unsolicited);
  auto resolver_h = core::top_shadowed_resolvers(ratios, 5);
  auto stats = core::retention_stats(result.ledger, result.unsolicited, resolver_h,
                                     resolver_h.empty() ? "Yandex" : resolver_h.front());
  std::printf("retention (over Resolver_h decoys): >3 requests after 1h: %s, "
              ">10: %s, web re-appearance after 10d: %s\n\n",
              core::percent(stats.over3_after_1h).c_str(),
              core::percent(stats.over10_after_1h).c_str(),
              core::percent(stats.web_after_10d).c_str());
}

void print_reports(const CliOptions& options, core::Testbed& bed,
                   const core::CampaignResult& result) {
  std::printf("campaign: %zu decoys, %zu honeypot hits, %zu unsolicited, %d usable VPs\n\n",
              result.ledger.decoy_count(), result.hits.size(), result.unsolicited.size(),
              result.screening.usable);
  if (result.shard_stats.size() > 1) {
    for (std::size_t i = 0; i < result.shard_stats.size(); ++i) {
      const auto& stats = result.shard_stats[i];
      std::printf("  shard %zu: %llu events processed, peak queue %zu\n", i,
                  static_cast<unsigned long long>(stats.processed), stats.high_water);
    }
    std::printf("\n");
  }
  if (options.report == "all" || options.report == "fig3") print_fig3(bed, result);
  if (options.report == "all" || options.report == "table2") print_table2(result);
  if (options.report == "all" || options.report == "table3") print_table3(bed, result);
  if (options.report == "all" || options.report == "retention") print_retention(result);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "run") != 0) return usage();
  CliOptions options;
  if (!parse_options(argc, argv, options)) return usage();

  core::TestbedConfig config;
  config.topology.seed = options.seed;
  config.topology.apply_scale(options.scale);

  core::CampaignConfig campaign_config;
  campaign_config.total_duration = static_cast<SimDuration>(options.days) * kDay;
  campaign_config.dns_transport = options.transport;
  campaign_config.tls_decoys_use_ech = options.ech;
  campaign_config.screening = options.screening;

  shadow::ShadowConfig shadow_config;
  sim::TraceRecorder trace;

  std::unique_ptr<core::Testbed> bed;             // serial-path substrate
  std::unique_ptr<core::CampaignEngine> engine;   // sharded-path substrate
  shadow::ShadowDeployment deployment;            // serial-path ground truth
  core::CampaignResult result;
  core::Testbed* context = nullptr;  // substrate the reports/export read from

  if (options.shards > 0) {
    engine = std::make_unique<core::CampaignEngine>(
        config, campaign_config, options.shards,
        [shadow_config](core::Testbed& replica) -> std::shared_ptr<void> {
          return std::make_shared<shadow::ShadowDeployment>(
              shadow::deploy_standard_exhibitors(replica, shadow_config));
        });
    context = &engine->primary();
    if (options.trace > 0) {
      context->net().add_tap(context->topology().national_gateway("CN"), &trace);
    }
    result = engine->run();
  } else {
    bed = core::Testbed::create(config);
    deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
    context = bed.get();
    if (options.trace > 0) {
      bed->net().add_tap(bed->topology().national_gateway("CN"), &trace);
    }
    core::Campaign campaign(*bed, campaign_config);
    campaign.run();
    result = campaign.result();
  }

  print_reports(options, *context, result);

  if (options.trace > 0) {
    std::printf("first packets across the CN national gateway:\n%s\n",
                trace.dump(static_cast<std::size_t>(options.trace)).c_str());
  }

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    out << core::export_campaign_json(*context, result);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
