// shadowprobe CLI: run the full measurement campaign from the command line
// and print reports or export JSON.
//
//   shadowprobe_cli run [options]
//
//   options:
//     --scale X            platform scale multiplier (default 1.0)
//     --seed N             master seed (default 20240301)
//     --days N             capture horizon in simulated days (default 25)
//     --shards N           run the sharded engine with N VP partitions
//                          (default: SHADOWPROBE_SHARDS env var, else serial);
//                          results are byte-identical for any N
//     --analysis-workers N worker threads for the post-barrier pipeline
//                          (classification + analysis tables; default:
//                          SHADOWPROBE_ANALYSIS_WORKERS env var, else 1);
//                          results are byte-identical for any N
//     --transport T        dns decoy transport: plain | dot | odoh
//     --ech                send TLS decoys with Encrypted Client Hello
//     --no-screening       skip the Appendix-E platform screens
//     --report R           all | fig3 | table2 | table3 | retention (default all)
//     --json FILE          write the full analysis as JSON
//     --trace N            print the first N packets crossing the CN gateway
//                          (with --shards, shard 0's replica)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/campaign_engine.h"
#include "core/json_export.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"
#include "sim/trace.h"

using namespace shadowprobe;

namespace {

struct CliOptions {
  double scale = 1.0;
  std::uint64_t seed = 20240301;
  int days = 25;
  int shards = 0;  // 0 = serial Campaign, >= 1 = CampaignEngine
  int analysis_workers = 1;
  core::DnsDecoyTransport transport = core::DnsDecoyTransport::kPlain;
  bool ech = false;
  bool screening = true;
  std::string report = "all";
  std::string json_path;
  int trace = 0;
};

int usage() {
  std::fprintf(stderr,
               "usage: shadowprobe_cli run [--scale X] [--seed N] [--days N]\n"
               "         [--shards N] [--analysis-workers N]\n"
               "         [--transport plain|dot|odoh] [--ech]\n"
               "         [--no-screening]\n"
               "         [--report all|fig3|table2|table3|retention] [--json FILE]\n"
               "         [--trace N]\n");
  return 2;
}

bool parse_options(int argc, char** argv, CliOptions& options) {
  if (const char* env = std::getenv("SHADOWPROBE_SHARDS")) {
    options.shards = std::atoi(env);
  }
  if (const char* env = std::getenv("SHADOWPROBE_ANALYSIS_WORKERS")) {
    options.analysis_workers = std::atoi(env);
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      options.scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--days") {
      const char* v = next();
      if (!v) return false;
      options.days = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      options.shards = std::atoi(v);
    } else if (arg == "--analysis-workers") {
      const char* v = next();
      if (!v) return false;
      options.analysis_workers = std::atoi(v);
    } else if (arg == "--transport") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "plain") == 0) {
        options.transport = core::DnsDecoyTransport::kPlain;
      } else if (std::strcmp(v, "dot") == 0) {
        options.transport = core::DnsDecoyTransport::kEncrypted;
      } else if (std::strcmp(v, "odoh") == 0) {
        options.transport = core::DnsDecoyTransport::kOblivious;
      } else {
        return false;
      }
    } else if (arg == "--ech") {
      options.ech = true;
    } else if (arg == "--no-screening") {
      options.screening = false;
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return false;
      options.report = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      options.json_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      options.trace = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "run") != 0) return usage();
  CliOptions options;
  if (!parse_options(argc, argv, options)) return usage();

  core::TestbedConfig config;
  config.topology.seed = options.seed;
  config.topology.apply_scale(options.scale);

  core::CampaignConfig campaign_config;
  campaign_config.total_duration = static_cast<SimDuration>(options.days) * kDay;
  campaign_config.dns_transport = options.transport;
  campaign_config.tls_decoys_use_ech = options.ech;
  campaign_config.screening = options.screening;
  campaign_config.analysis_workers = options.analysis_workers;

  shadow::ShadowConfig shadow_config;
  sim::TraceRecorder trace;

  std::unique_ptr<core::Testbed> bed;             // serial-path substrate
  std::unique_ptr<core::CampaignEngine> engine;   // sharded-path substrate
  shadow::ShadowDeployment deployment;            // serial-path ground truth
  core::CampaignResult result;
  core::Testbed* context = nullptr;  // substrate the reports/export read from

  if (options.shards > 0) {
    engine = std::make_unique<core::CampaignEngine>(
        config, campaign_config, options.shards,
        [shadow_config](core::Testbed& replica) -> std::shared_ptr<void> {
          return std::make_shared<shadow::ShadowDeployment>(
              shadow::deploy_standard_exhibitors(replica, shadow_config));
        });
    context = &engine->primary();
    if (options.trace > 0) {
      context->net().add_tap(context->topology().national_gateway("CN"), &trace);
    }
    result = engine->run();
  } else {
    bed = core::Testbed::create(config);
    deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
    context = bed.get();
    if (options.trace > 0) {
      bed->net().add_tap(bed->topology().national_gateway("CN"), &trace);
    }
    core::Campaign campaign(*bed, campaign_config);
    campaign.run();
    result = campaign.result();
  }

  // Every table the printers and the JSON export need, computed once.
  core::CampaignAnalysis analysis =
      core::analyze_campaign(*context, result, options.analysis_workers);

  core::print_reports(options.report, result, analysis);

  if (options.trace > 0) {
    std::printf("first packets across the CN national gateway:\n%s\n",
                trace.dump(static_cast<std::size_t>(options.trace)).c_str());
  }

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    out << core::export_campaign_json(*context, result, analysis);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
